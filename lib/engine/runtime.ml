open Dpc_ndlog

let log_src = Logs.Src.create "dpc.runtime" ~doc:"DELP runtime events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = { injected : int; fired : int; outputs : int; dead_ends : int }

type t = {
  transport : Dpc_net.Transport.t;
  reliability : Dpc_net.Reliable.t option;
  delp : Delp.t;
  env : Env.t;
  hook : Prov_hook.t;
  msg_overhead : int;
  interest : string list;
  nodes : Node.t array;
  plans : (string, Eval.plan list) Hashtbl.t;  (* event relation -> rule plans, program order *)
  record_outputs : bool;
  (* Cluster-global accumulators: every shard of a sharded transport
     appends/increments concurrently, so the list is mutex-guarded and
     the counters are atomics. (Under [~domains:1] this costs a few
     uncontended ns per event.) *)
  outputs_lock : Mutex.t;
  mutable outputs_rev : (Tuple.t * Prov_hook.meta) list;
  injected : int Atomic.t;
  fired : int Atomic.t;
  output_count : int Atomic.t;
  dead_ends : int Atomic.t;
  (* Crash-fault support: [journal] is the write-ahead sink (set by the
     durable layer), [available] says whether a node can take an injection
     right now (set from the crashable transport's control), [replaying]
     turns processing into pure state reconstruction for one node — no
     sends, no journaling, no global counters. Per-node, not global: one
     node replaying on its shard must not silence its neighbours'
     journaling on other shards. *)
  mutable journal : (node:int -> Journal.entry -> unit) option;
  mutable available : int -> bool;
  replaying : bool array;
  (* Real-process support: closures cannot cross a process boundary, so a
     transport that hosts only part of the cluster installs [remote] and
     gets every cross-process message as a serialized journal entry.
     [channel_restore] is where replayed channel advances go when the
     sequence state lives below the transport (a socket backend) instead
     of in an in-process [Reliable]. *)
  mutable remote : remote option;
  mutable channel_restore : channel_restore option;
}

and remote = {
  is_local : int -> bool;
  remote_ship : dst:int -> bytes:int -> payload:string -> unit;
  replayed_ship : dst:int -> payload:string -> unit;
}

and channel_restore = {
  restore_next_seq : peer:int -> seq:int -> unit;
  restore_expected : peer:int -> seq:int -> unit;
}

let create ~transport ?reliable ?domains ~delp ~env ~hook ?(msg_overhead = 28) ?(interest = [])
    ?(record_outputs = true) ?nodes () =
  (match domains with
  | None -> ()
  | Some d ->
      let shards = Dpc_net.Transport.shards transport in
      if d <> shards then
        invalid_arg
          (Printf.sprintf "Runtime.create: ~domains:%d but the transport has %d shard(s)" d
             shards));
  (match List.filter (fun rel -> not (Delp.is_event delp rel)) interest with
  | [] -> ()
  | bad ->
      invalid_arg
        (Printf.sprintf "Runtime.create: interest relations [%s] are not derived by the program"
           (String.concat "; " (List.map (Printf.sprintf "%S") bad))));
  let n = Dpc_net.Transport.nodes transport in
  let nodes =
    match nodes with
    | None -> Node.cluster n
    | Some nodes ->
        if Array.length nodes <> n then
          invalid_arg
            (Printf.sprintf "Runtime.create: %d nodes supplied for a %d-node transport"
               (Array.length nodes) n);
        nodes
  in
  (* Under ?reliable, every message — event tuple shipments and sig
     broadcasts alike — goes through the at-least-once layer, and its
     per-node net.* counters land in the same registries as the
     runtime.* ones, so metrics_snapshot sees retries and dedups. *)
  let reliability, transport =
    match reliable with
    | None -> (None, transport)
    | Some config ->
        let r =
          Dpc_net.Reliable.wrap ~config
            ~metrics:(fun i -> Node.metrics nodes.(i))
            transport
        in
        (Some r, Dpc_net.Reliable.transport r)
  in
  (* Compile every rule once; [process] fetches the plans for an event
     relation with one hash lookup instead of filtering the program. *)
  let plans = Hashtbl.create 8 in
  List.iter
    (fun (rule : Ast.rule) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt plans rule.event.rel) in
      Hashtbl.replace plans rule.event.rel (existing @ [ Eval.plan rule ]))
    delp.program.rules;
  {
    transport;
    reliability;
    delp;
    env;
    hook;
    msg_overhead;
    interest;
    nodes;
    plans;
    record_outputs;
    outputs_lock = Mutex.create ();
    outputs_rev = [];
    injected = Atomic.make 0;
    fired = Atomic.make 0;
    output_count = Atomic.make 0;
    dead_ends = Atomic.make 0;
    journal = None;
    available = (fun _ -> true);
    replaying = Array.make n false;
    remote = None;
    channel_restore = None;
  }

let transport t = t.transport
let domains t = Dpc_net.Transport.shards t.transport
let reliability t = t.reliability
let delp t = t.delp
let nodes t = t.nodes
let node t i = t.nodes.(i)
let db t node = Node.db t.nodes.(node)
let tick t node name = Node.tick t.nodes.(node) name

let set_journal t f = t.journal <- Some f
let set_availability t f = t.available <- f

let set_remote t ~is_local ~ship ~replayed =
  t.remote <- Some { is_local; remote_ship = ship; replayed_ship = replayed }

let set_channel_restore t ~next_seq ~expected =
  t.channel_restore <- Some { restore_next_seq = next_seq; restore_expected = expected }

let encode_entry entry = Dpc_util.Serialize.with_scratch (fun w -> Journal.write w entry)

let journal t node entry =
  if not t.replaying.(node) then
    match t.journal with None -> () | Some f -> f ~node entry

let load_slow t tuples =
  List.iter
    (fun tuple ->
      let node = Tuple.loc tuple in
      journal t node (Journal.Load tuple);
      ignore (Db.insert (db t node) tuple))
    tuples

(* Process [event] arriving at [node] carrying [meta]: fire every rule the
   event relation triggers; ship each head to its location. A head whose
   relation triggers no rule is an output. *)
let rec process t ~input node event meta =
  match Hashtbl.find_opt t.plans (Tuple.rel event) with
  | None ->
      Log.debug (fun m -> m "output %s at n%d" (Tuple.to_string event) node);
      if not t.replaying.(node) then begin
        Atomic.incr t.output_count;
        if t.record_outputs then
          Mutex.protect t.outputs_lock (fun () ->
            t.outputs_rev <- (event, meta) :: t.outputs_rev)
      end;
      tick t node "runtime.outputs";
      ignore (Db.insert (db t node) event);
      t.hook.on_output ~node event meta
  | Some plans ->
      (* Extra relations of interest get a concrete provenance record on
         arrival, then execution continues through them. The injected input
         event itself is a base tuple (nothing derived it), so only derived
         arrivals are recorded. *)
      if (not input) && List.mem (Tuple.rel event) t.interest then begin
        ignore (Db.insert (db t node) event);
        t.hook.on_output ~node event meta
      end;
      let any_fired = ref false in
      List.iter
        (fun plan ->
          let rule = Eval.plan_rule plan in
          List.iter
            (fun (head, slow) ->
              any_fired := true;
              if not t.replaying.(node) then Atomic.incr t.fired;
              tick t node "runtime.fired";
              Log.debug (fun m ->
                m "%s fired at n%d: %s -> %s" rule.Ast.name node (Tuple.to_string event)
                  (Tuple.to_string head));
              let meta' = t.hook.on_fire ~node ~rule ~event ~slow ~head meta in
              ship t node head meta')
            (Eval.fire_planned ~env:t.env ~db:(db t node) ~plan ~event))
        plans;
      if not !any_fired then begin
        Log.debug (fun m -> m "event %s died at n%d" (Tuple.to_string event) node);
        if not t.replaying.(node) then Atomic.incr t.dead_ends;
        tick t node "runtime.dead_ends"
      end

and ship t src head meta =
  let dst = Tuple.loc head in
  let bytes = Tuple.wire_size head + t.hook.meta_bytes meta + t.msg_overhead in
  tick t src "runtime.shipped_msgs";
  Node.tick t.nodes.(src) ~by:bytes "runtime.shipped_bytes";
  if not t.replaying.(src) then begin
    match t.remote with
    | Some r when not (r.is_local dst) ->
        (* Cross-process: the closure below cannot travel, so the arrival
           goes over as its serialized journal entry and the receiving
           process re-materializes it in [deliver_remote]. *)
        r.remote_ship ~dst ~bytes
          ~payload:(encode_entry (Journal.Arrival { event = head; meta }))
    | _ ->
        Dpc_net.Transport.send t.transport ~src ~dst ~bytes (fun () ->
          journal t dst (Journal.Arrival { event = head; meta });
          process t ~input:false dst head meta)
  end
  else begin
    (* During replay the ship already happened in the pre-crash run: the
       metric ticks above rebuild the node's wiped counters, but nothing
       goes back on the wire — the recovering node's downstream effects
       are someone else's (delivered) history, not new sends. The one
       exception is a REMOTE send in a real-process host: a crash can land
       between the arrival reaching the write-ahead log and the resulting
       sends reaching the durable outbox, so replay re-offers every
       regenerated remote payload and the host reconciles it against the
       outbox ledger (already-recorded sends are recognized by their
       per-channel position and skipped; the missing tail gets recorded
       and transmitted at last). *)
    match t.remote with
    | Some r when not (r.is_local dst) ->
        r.replayed_ship ~dst
          ~payload:(encode_entry (Journal.Arrival { event = head; meta }))
    | _ -> ()
  end

(* Broadcast the sig control message to every node, including the origin
   (delivered locally through the queue to preserve event ordering). *)
let broadcast_sig t node op tuple =
  let bytes = t.msg_overhead + 4 in
  Node.tick t.nodes.(node) ~by:(Array.length t.nodes) "runtime.shipped_msgs";
  Node.tick t.nodes.(node) ~by:(bytes * Array.length t.nodes) "runtime.shipped_bytes";
  match t.remote with
  | None ->
      Dpc_net.Transport.broadcast t.transport ~src:node ~bytes (fun target ->
        journal t target (Journal.Sig { op; tuple });
        t.hook.on_slow_update ~node:target ~op tuple)
  | Some r ->
      (* A partial-cluster host fans the broadcast out by hand: local
         targets through the event queue as usual, remote ones as
         serialized [Sig] entries. *)
      for target = 0 to Array.length t.nodes - 1 do
        if r.is_local target then
          Dpc_net.Transport.send t.transport ~src:node ~dst:target ~bytes (fun () ->
            journal t target (Journal.Sig { op; tuple });
            t.hook.on_slow_update ~node:target ~op tuple)
        else r.remote_ship ~dst:target ~bytes ~payload:(encode_entry (Journal.Sig { op; tuple }))
      done

let deliver_remote t ~node payload =
  let entry = Journal.read (Dpc_util.Serialize.reader payload) in
  match entry with
  | Journal.Arrival { event; meta } ->
      if Tuple.loc event <> node then
        invalid_arg
          (Printf.sprintf "Runtime.deliver_remote: arrival for n%d delivered at n%d"
             (Tuple.loc event) node);
      journal t node entry;
      process t ~input:false node event meta
  | Journal.Sig { op; tuple } ->
      journal t node entry;
      t.hook.on_slow_update ~node ~op tuple
  | _ -> invalid_arg "Runtime.deliver_remote: only arrivals and sig messages cross the wire"

let insert_slow_runtime t tuple =
  let node = Tuple.loc tuple in
  (* A duplicate insert changes nothing, so nothing is announced: no sig
     broadcast, no message/byte accounting. *)
  if Db.insert (db t node) tuple then begin
    journal t node (Journal.Slow_insert tuple);
    broadcast_sig t node Prov_hook.Slow_insert tuple
  end

let delete_slow_runtime t tuple =
  let node = Tuple.loc tuple in
  if Db.remove (db t node) tuple then begin
    journal t node (Journal.Slow_delete tuple);
    broadcast_sig t node Prov_hook.Slow_delete tuple;
    true
  end
  else false

(* How long an injection at a down node waits before trying again. The
   input source keeps its event durably and re-presents it — an injection
   is never lost to a crash, only delayed past the restart. *)
let inject_retry_delay = 0.05

let inject t ?(delay = 0.0) event =
  if not (String.equal (Tuple.rel event) t.delp.input_event) then
    invalid_arg
      (Printf.sprintf "Runtime.inject: expected a %S tuple, got %S" t.delp.input_event
         (Tuple.rel event));
  Atomic.incr t.injected;
  let node = Tuple.loc event in
  let attempts = ref 0 in
  let rec attempt () =
    incr attempts;
    if t.available node then begin
      tick t node "runtime.injected";
      journal t node (Journal.Input event);
      let meta = t.hook.on_input ~node event in
      process t ~input:true node event meta
    end
    else if !attempts < 1000 then
      (* The node is down: the input source holds the event and re-presents
         it after the restart. Bounded so a never-restarted node cannot
         keep the event loop spinning forever. *)
      Dpc_net.Transport.schedule_on t.transport ~node ~delay:inject_retry_delay attempt
    else tick t node "runtime.abandoned_injections"
  in
  (* [schedule_on], not [schedule]: processing must start on the shard
     that owns the event's node. *)
  Dpc_net.Transport.schedule_on t.transport ~node ~delay attempt

(* Rebuild one node's volatile state from its journal tail. Entries are
   re-applied through the same hook/process pipeline that produced the
   original state — replay mode keeps the per-node metric ticks (the
   registry was wiped with the node) but suppresses sends, journaling,
   and the cluster-global counters (those never died). Channel entries
   restore the reliable layer's sequence state in place, so surviving
   retransmit closures pick the watermark back up. *)
let replay t ~node entries =
  t.replaying.(node) <- true;
  Fun.protect
    ~finally:(fun () -> t.replaying.(node) <- false)
    (fun () ->
      List.iter
        (fun entry ->
          match (entry : Journal.entry) with
          | Input event ->
              tick t node "runtime.injected";
              let meta = t.hook.on_input ~node event in
              process t ~input:true node event meta
          | Arrival { event; meta } -> process t ~input:false node event meta
          | Sig { op; tuple } -> t.hook.on_slow_update ~node ~op tuple
          | Slow_insert tuple -> ignore (Db.insert (db t node) tuple)
          | Slow_delete tuple -> ignore (Db.remove (db t node) tuple)
          | Load tuple -> ignore (Db.insert (db t node) tuple)
          | Next_seq { peer; seq } -> (
              match (t.reliability, t.channel_restore) with
              | Some r, _ -> Dpc_net.Reliable.set_next_seq r ~src:node ~dst:peer seq
              | None, Some c -> c.restore_next_seq ~peer ~seq
              | None, None -> ())
          | Expected { peer; seq } -> (
              match (t.reliability, t.channel_restore) with
              | Some r, _ -> Dpc_net.Reliable.set_expected r ~src:peer ~dst:node seq
              | None, Some c -> c.restore_expected ~peer ~seq
              | None, None -> ()))
        entries)

let outputs t = Mutex.protect t.outputs_lock (fun () -> List.rev t.outputs_rev)

let stats t =
  {
    injected = Atomic.get t.injected;
    fired = Atomic.get t.fired;
    outputs = Atomic.get t.output_count;
    dead_ends = Atomic.get t.dead_ends;
  }

let metrics_snapshot t =
  Array.fold_left
    (fun acc node -> Dpc_util.Metrics.merge acc (Dpc_util.Metrics.snapshot (Node.metrics node)))
    Dpc_util.Metrics.empty t.nodes

let run ?until t = Dpc_net.Transport.run ?until t.transport
