lib/ndlog/tuple.ml: Array Buffer Dpc_util Format Hashtbl List Stdlib String Value
