open Dpc_ndlog
open Dpc_util
module Node = Dpc_engine.Node

(* The sharing key is alpha-insensitive: variables are renamed to their
   order of first occurrence, so two programs whose rules differ only in
   variable names (and the rule name) still share rows. *)
let rule_signature (r : Ast.rule) =
  let ordered = Ast.rule_vars_in_order r in
  let renaming = List.mapi (fun i v -> (v, Printf.sprintf "X%d" i)) ordered in
  let rename v = match List.assoc_opt v renaming with Some v' -> v' | None -> v in
  Pretty.rule_to_string (Ast.map_rule_vars rename { r with name = "sig" })

(* Shared across programs: concrete rule-execution node rows and the
   slow-tuple materialization (both content-addressed). *)
type shared_state = {
  exec_nodes : Rows.rule_exec_row Rows.Table.t;  (* keyed by rid hex *)
  slow_tuples : Side_store.t;
}

(* Private to one program at one node. *)
type private_state = {
  prov : Rows.prov_row Rows.Table.t;
  exec_links : Rows.link_row Rows.Table.t;
  htequi : (string, unit) Hashtbl.t;
  hmap : (string, (int * Sha1.t) list ref) Hashtbl.t;
  mutable hmap_refs : int;  (* total chain roots across hmap, for O(1) storage *)
  events : Side_store.t;  (* evid -> input event at ingress *)
}

type t = {
  cluster : Node.t array;
  shared_key : shared_state Node.key;
  mutable program_ids : string list;
  mutable program_storages : (unit -> Rows.storage) list;
  (* Signatures are interned to short ids so shared rows cost the same as
     single-program rows (which store rule names, not rule text). *)
  sig_ids : (string, string) Hashtbl.t;  (* signature -> "g<n>" *)
  sig_of_id : (string, string) Hashtbl.t;
}

type handle = {
  store : t;
  id : string;
  delp : Delp.t;
  env : Dpc_engine.Env.t;
  keys : Dpc_analysis.Equi_keys.t;
  private_key : private_state Node.key;
  signatures : (string, Ast.rule) Hashtbl.t;  (* signature -> this program's rule *)
}

let create ~nodes =
  {
    cluster = Node.cluster nodes;
    shared_key = Node.key ~name:"store.multi.shared" ();
    program_ids = [];
    program_storages = [];
    sig_ids = Hashtbl.create 16;
    sig_of_id = Hashtbl.create 16;
  }

let nodes t = t.cluster

let shared t node =
  Node.get_or_init t.cluster.(node) t.shared_key ~init:(fun () ->
    {
      exec_nodes = Rows.Table.create ~row_bytes:(Rows.rule_exec_row_bytes ~with_next:false) ();
      slow_tuples = Side_store.create ();
    })

let priv h node =
  Node.get_or_init h.store.cluster.(node) h.private_key ~init:(fun () ->
    {
      prov = Rows.Table.create ~row_bytes:(Rows.prov_row_bytes ~with_evid:true) ();
      exec_links = Rows.Table.create ~row_bytes:Rows.link_row_bytes ();
      htequi = Hashtbl.create 16;
      hmap = Hashtbl.create 16;
      hmap_refs = 0;
      events = Side_store.create ();
    })

let tick t node name = Metrics.incr (Node.metrics t.cluster.(node)) name

let intern_signature t signature =
  match Hashtbl.find_opt t.sig_ids signature with
  | Some id -> id
  | None ->
      let id = Printf.sprintf "g%d" (Hashtbl.length t.sig_ids) in
      Hashtbl.add t.sig_ids signature id;
      Hashtbl.add t.sig_of_id id signature;
      id

let program_storage h =
  let acc = ref Rows.empty_storage in
  Array.iteri
    (fun node _ ->
      let p = priv h node in
      let equi =
        (Hashtbl.length p.htequi * 20)
        + (Hashtbl.length p.hmap * 20)
        + (p.hmap_refs * Rows.ref_bytes)
      in
      acc :=
        Rows.add_storage !acc
          {
            Rows.prov_bytes = Rows.Table.bytes p.prov;
            rule_exec_bytes = Rows.Table.bytes p.exec_links;
            equi_bytes = equi;
            event_bytes = Side_store.bytes p.events;
            prov_rows = Rows.Table.rows p.prov;
            rule_exec_rows = Rows.Table.rows p.exec_links;
          })
    h.store.cluster;
  !acc

let add_program t ~id ~delp ~env =
  if List.mem id t.program_ids then
    invalid_arg (Printf.sprintf "Store_multi.add_program: duplicate program id %S" id);
  t.program_ids <- id :: t.program_ids;
  let signatures = Hashtbl.create 8 in
  List.iter
    (fun (r : Ast.rule) -> Hashtbl.replace signatures (rule_signature r) r)
    delp.Delp.program.rules;
  let handle =
    {
      store = t;
      id;
      delp;
      env;
      keys = Dpc_analysis.Equi_keys.compute delp;
      private_key = Node.key ~name:("store.multi." ^ id) ();
      signatures;
    }
  in
  t.program_storages <- (fun () -> program_storage handle) :: t.program_storages;
  handle

(* The shared rid: rule content (not name, not program), executing node,
   slow-changing tuples. *)
let node_rid ~signature ~node ~slow_vids =
  Sha1.digest_concat (signature :: string_of_int node :: List.map Rows.hex slow_vids)

let on_input h ~node event =
  let meta = Dpc_engine.Prov_hook.initial_meta event in
  let k = Dpc_analysis.Equi_keys.key_hash h.keys event in
  let k_key = Rows.key k in
  let p = priv h node in
  let exist_flag = Hashtbl.mem p.htequi k_key in
  tick h.store node (if exist_flag then "store.equi_hits" else "store.equi_misses");
  if not exist_flag then Hashtbl.add p.htequi k_key ();
  Side_store.put p.events ~key:meta.evid event;
  { meta with exist_flag; eqkey = Some k }

let on_fire h ~node ~(rule : Ast.rule) ~slow (meta : Dpc_engine.Prov_hook.meta) =
  if meta.exist_flag then meta
  else begin
    let slow_vids = List.map Rows.vid_of slow in
    let sh = shared h.store node in
    List.iter2
      (fun tuple vid -> Side_store.put sh.slow_tuples ~key:vid tuple)
      slow slow_vids;
    let signature = rule_signature rule in
    let rid = node_rid ~signature ~node ~slow_vids in
    let sig_id = intern_signature h.store signature in
    if
      Rows.Table.add sh.exec_nodes ~key:(Rows.key rid)
        { Rows.rloc = node; rid; rule = sig_id; vids = slow_vids; next = None }
    then tick h.store node "store.rule_exec_rows";
    if
      Rows.Table.add (priv h node).exec_links ~key:(Rows.key rid)
        { Rows.link_rloc = node; link_rid = rid; link_next = meta.prev }
    then tick h.store node "store.rule_exec_rows";
    { meta with prev = Some (node, rid) }
  end

let on_output h ~node output (meta : Dpc_engine.Prov_hook.meta) =
  let p = priv h node in
  let k_key =
    match meta.eqkey with
    | Some k -> Rows.key k
    | None -> invalid_arg "Store_multi.on_output: meta has no equivalence key"
  in
  (* hmap associations are per (equivalence class, output relation): with
     extra relations of interest one class has several recorded output
     relations, each with its own chain reference(s). *)
  let k_key = k_key ^ ":" ^ Tuple.rel output in
  let vid = Rows.vid_of output in
  let add_row rref =
    if
      Rows.Table.add p.prov ~key:(Rows.key vid)
        { Rows.loc = node; vid; rid = Some rref; evid = Some meta.evid }
    then tick h.store node "store.prov_rows"
  in
  if not meta.exist_flag then begin
    match meta.prev with
    | None -> invalid_arg "Store_multi.on_output: materializing execution has no chain"
    | Some rref ->
        let refs =
          match Hashtbl.find_opt p.hmap k_key with
          | Some r -> r
          | None ->
              let r = ref [] in
              Hashtbl.add p.hmap k_key r;
              r
        in
        if not (List.mem rref !refs) then begin
          refs := !refs @ [ rref ];
          p.hmap_refs <- p.hmap_refs + 1
        end;
        add_row rref
  end
  else begin
    match Hashtbl.find_opt p.hmap k_key with
    | Some refs when !refs <> [] -> List.iter add_row !refs
    | Some _ | None -> ()
  end

let hook h =
  {
    Dpc_engine.Prov_hook.name = "multi:" ^ h.id;
    on_input = (fun ~node event -> on_input h ~node event);
    on_fire = (fun ~node ~rule ~event:_ ~slow ~head:_ meta -> on_fire h ~node ~rule ~slow meta);
    on_output = (fun ~node output meta -> on_output h ~node output meta);
    on_slow_update = (fun ~node ~op:_ _ -> Hashtbl.reset (priv h node).htequi);
    meta_bytes = (fun _ -> 1 + 20 + 20 + Rows.ref_bytes);
  }

(* ----------------------------------------------------------------- *)
(* Storage *)

let shared_storage t =
  let rule_exec_bytes = ref 0 and rule_exec_rows = ref 0 and slow_bytes = ref 0 in
  Array.iteri
    (fun node _ ->
      let s = shared t node in
      rule_exec_bytes := !rule_exec_bytes + Rows.Table.bytes s.exec_nodes;
      rule_exec_rows := !rule_exec_rows + Rows.Table.rows s.exec_nodes;
      slow_bytes := !slow_bytes + Side_store.bytes s.slow_tuples)
    t.cluster;
  {
    Rows.empty_storage with
    Rows.rule_exec_bytes = !rule_exec_bytes;
    rule_exec_rows = !rule_exec_rows;
    event_bytes = !slow_bytes;
  }

let total_storage t =
  List.fold_left
    (fun acc f -> Rows.add_storage acc (f ()))
    (shared_storage t) t.program_storages

(* ----------------------------------------------------------------- *)
(* Query: interclass-style chain collection over shared nodes and private
   links, then bottom-up re-derivation with this program's rules. *)

exception Broken of string

type acct = {
  cost : Query_cost.t;
  routing : Dpc_net.Routing.t;
  mutable latency : float;
  mutable entries : int;
  mutable bytes : int;
  mutable rederives : int;
  mutable hop_s : float;
}

let charge_entries acct n =
  acct.entries <- acct.entries + n;
  acct.latency <- acct.latency +. (float_of_int n *. acct.cost.Query_cost.per_entry)

let charge_bytes acct n =
  acct.bytes <- acct.bytes + n;
  acct.latency <- acct.latency +. (float_of_int n *. acct.cost.Query_cost.per_byte)

let charge_rederive acct n =
  acct.rederives <- acct.rederives + n;
  acct.latency <- acct.latency +. (float_of_int n *. acct.cost.Query_cost.per_rederive)

let charge_hop acct ~src ~dst =
  let h = Query_cost.hop acct.cost acct.routing ~src ~dst in
  acct.hop_s <- acct.hop_s +. h;
  acct.latency <- acct.latency +. h

let find_rule h sig_id =
  match Hashtbl.find_opt h.store.sig_of_id sig_id with
  | None -> raise (Broken "unknown rule signature id")
  | Some signature -> begin
      match Hashtbl.find_opt h.signatures signature with
      | Some r -> r
      | None -> raise (Broken "rule signature not in this program")
    end

let max_chains = 64

let fetch_chains h acct ~start rref =
  let results = ref [] in
  let rec go at (rloc, rid) acc seen =
    if List.length !results >= max_chains then ()
    else begin
      charge_hop acct ~src:at ~dst:rloc;
      let key = (rloc, Rows.key rid) in
      if List.mem key seen then ()
      else begin
        let seen = key :: seen in
        match Rows.Table.find (shared h.store rloc).exec_nodes (Rows.key rid) with
        | [] -> raise (Broken "missing shared ruleExecNode")
        | _ :: _ :: _ -> raise (Broken "duplicate shared rid")
        | [ row ] ->
            charge_entries acct 1;
            charge_bytes acct (Rows.rule_exec_row_bytes ~with_next:false row);
            let links = Rows.Table.find (priv h rloc).exec_links (Rows.key rid) in
            charge_entries acct (List.length links);
            List.iter (fun l -> charge_bytes acct (Rows.link_row_bytes l)) links;
            if links = [] then raise (Broken "no link row for this program");
            List.iter
              (fun (l : Rows.link_row) ->
                match l.link_next with
                | None -> results := List.rev (row :: acc) :: !results
                | Some next -> go rloc next (row :: acc) seen)
              links
      end
    end
  in
  go start rref [] [];
  !results

let resolve_slow h acct ~node vid =
  match Side_store.get (shared h.store node).slow_tuples ~key:vid with
  | Some tuple ->
      charge_bytes acct (Tuple.wire_size tuple);
      tuple
  | None -> raise (Broken "slow tuple not materialized")

let rederive h acct ~evid chain =
  let rec build = function
    | [] -> raise (Broken "empty chain")
    | [ (leaf : Rows.rule_exec_row) ] ->
        let event =
          match Side_store.get (priv h leaf.rloc).events ~key:evid with
          | Some ev ->
              charge_bytes acct (Tuple.wire_size ev);
              ev
          | None -> raise (Broken "event not materialized")
        in
        let slow = List.map (resolve_slow h acct ~node:leaf.rloc) leaf.vids in
        let rule = find_rule h leaf.rule in
        charge_rederive acct 1;
        begin
          match Dpc_engine.Eval.fire_with_slow ~env:h.env ~rule ~event ~slow with
          | Some head ->
              ({ Prov_tree.rule = rule.name; output = head; trigger = Event event; slow }, head)
          | None -> raise (Broken "re-derivation failed at leaf")
        end
    | (row : Rows.rule_exec_row) :: rest ->
        let sub, sub_head = build rest in
        if Tuple.loc sub_head <> row.rloc then raise (Broken "chain/location mismatch");
        let slow = List.map (resolve_slow h acct ~node:row.rloc) row.vids in
        let rule = find_rule h row.rule in
        charge_rederive acct 1;
        begin
          match Dpc_engine.Eval.fire_with_slow ~env:h.env ~rule ~event:sub_head ~slow with
          | Some head ->
              ({ Prov_tree.rule = rule.name; output = head; trigger = Derived sub; slow }, head)
          | None -> raise (Broken "re-derivation failed")
        end
  in
  build chain

let query h ~cost ~routing ?evid output =
  let querier = Tuple.loc output in
  let acct = { cost; routing; latency = 0.0; entries = 0; bytes = 0; rederives = 0; hop_s = 0.0 } in
  let htp = Rows.vid_of output in
  let rows = Rows.Table.find (priv h querier).prov (Rows.key htp) in
  let rows =
    match evid with
    | None -> rows
    | Some e ->
        List.filter
          (fun (r : Rows.prov_row) ->
            match r.evid with Some re -> Sha1.equal re e | None -> false)
          rows
  in
  charge_entries acct (max 1 (List.length rows));
  let trees =
    List.concat_map
      (fun (r : Rows.prov_row) ->
        let row_evid =
          match r.evid with Some e -> e | None -> raise (Broken "prov row without evid")
        in
        match r.rid with
        | None -> []
        | Some rref -> begin
            match fetch_chains h acct ~start:querier rref with
            | chains ->
                List.filter_map
                  (fun chain ->
                    match rederive h acct ~evid:row_evid chain with
                    | tree, head when Tuple.equal head output -> Some tree
                    | _ -> None
                    | exception Broken _ -> None)
                  chains
            | exception Broken _ -> []
          end)
      rows
  in
  (match trees with
  | [] -> ()
  | tr :: _ -> charge_hop acct ~src:(Tuple.loc (Prov_tree.event_of tr)) ~dst:querier);
  (* Multi-program queries have no liveness predicate yet: the store is a
     storage-sharing experiment, not wired into the crash-fault runtime. *)
  { Query_result.trees = Query_result.dedup_trees trees; latency = acct.latency;
    entries = acct.entries; bytes = acct.bytes; rederives = acct.rederives;
    hop_s = acct.hop_s; downs = 0; complete = true }
