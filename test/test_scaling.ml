(* Parallel-vs-sequential determinism oracle for the sharded runtime.

   The claim (see lib/net/shard_sim.mli): a run over Shard_sim with
   ~domains:N produces byte-identical provenance digests to ~domains:1,
   for every maintenance scheme — clean, under hashed fault injection
   (Transport.hashed_decide + Reliable), and under a seeded crash
   schedule with durable recovery. The clean case is exact structural
   determinism (same per-node event order, so also identical runtime
   stats and metrics); the fault/crash cases additionally lean on the
   confluence the chaos suite proves.

   Also here: the shard-partition unit test and the multi-domain
   Metrics hammer (satellite of the same PR). *)

open Dpc_core
open Dpc_testkit

let check = Alcotest.check

let all_schemes =
  [ Backend.S_exspan; Backend.S_basic; Backend.S_advanced; Backend.S_advanced_interclass ]

let domain_counts = [ 1; 2; 4 ]

let tree_sig tree =
  Dpc_ndlog.Tuple.canonical (Prov_tree.event_of tree) ^ "|" ^ Prov_tree.to_string tree

let query w ?evid out =
  Backend.query w.Delp_gen.backend ~cost:Query_cost.free ~routing:w.Delp_gen.routing ?evid out

(* Same observable-state digest the chaos oracle compares. *)
let world_digests w =
  List.map
    (fun (out, (meta : Dpc_engine.Prov_hook.meta)) -> (out, meta.evid))
    (Dpc_engine.Runtime.outputs w.Delp_gen.runtime)
  |> List.sort_uniq compare
  |> List.map (fun (out, evid) ->
       let sigs = List.sort_uniq compare (List.map tree_sig (query w ~evid out).trees) in
       ( (Dpc_ndlog.Tuple.canonical out, Dpc_util.Sha1.to_hex evid),
         Dpc_util.Sha1.to_hex (Dpc_util.Sha1.digest_string (String.concat "\n" sigs)) ))
  |> List.sort compare

let render ds =
  String.concat "\n"
    (List.map (fun ((out, evid), d) -> Printf.sprintf "  %s @%s -> %s" out evid d) ds)

let shard_transport ~domains ~nodes =
  Dpc_net.Shard_sim.transport
    (Dpc_net.Shard_sim.create ~latency:0.001 ~jitter:0.0005 ~seed:42 ~domains ~nodes ())

(* ------------------------------------------------------------------ *)
(* Clean runs: exact structural determinism across domain counts. *)

let clean_world instance scheme domains =
  let w =
    Delp_gen.build_world
      ~transport:(shard_transport ~domains ~nodes:instance.Delp_gen.nodes)
      instance scheme
  in
  Delp_gen.run_events w instance.events;
  w

let test_clean_digests () =
  List.iter
    (fun seed ->
      let instance = Delp_gen.generate ~rng:(Dpc_util.Rng.create ~seed) in
      List.iter
        (fun scheme ->
          let base = clean_world instance scheme 1 in
          let base_digests = world_digests base in
          let base_stats = Dpc_engine.Runtime.stats base.Delp_gen.runtime in
          let base_metrics = Dpc_engine.Runtime.metrics_snapshot base.Delp_gen.runtime in
          List.iter
            (fun domains ->
              let par = clean_world instance scheme domains in
              let par_digests = world_digests par in
              if base_digests <> par_digests then
                Alcotest.failf "seed %d, %s, ~domains:%d diverged from sequential\nseq:\n%s\npar:\n%s\nprogram:\n%s"
                  seed (Backend.scheme_name scheme) domains (render base_digests)
                  (render par_digests) instance.description;
              (* Clean parallel runs are exactly deterministic, not merely
                 confluent: same counters, same event totals. *)
              check
                (Alcotest.testable
                   (fun fmt (s : Dpc_engine.Runtime.stats) ->
                     Format.fprintf fmt "{injected=%d; fired=%d; outputs=%d; dead_ends=%d}"
                       s.injected s.fired s.outputs s.dead_ends)
                   ( = ))
                (Printf.sprintf "seed %d %s d%d runtime stats" seed
                   (Backend.scheme_name scheme) domains)
                base_stats
                (Dpc_engine.Runtime.stats par.Delp_gen.runtime);
              if base_metrics <> Dpc_engine.Runtime.metrics_snapshot par.Delp_gen.runtime then
                Alcotest.failf "seed %d, %s, ~domains:%d: metrics diverged from sequential" seed
                  (Backend.scheme_name scheme) domains)
            (List.tl domain_counts))
        all_schemes)
    [ 1; 2; 3 ]

(* Same domain count twice: run-to-run determinism (no scheduling or
   hash-order leak into the digest). *)
let test_run_to_run () =
  let instance = Delp_gen.generate ~rng:(Dpc_util.Rng.create ~seed:5) in
  List.iter
    (fun scheme ->
      let a = world_digests (clean_world instance scheme 4) in
      let b = world_digests (clean_world instance scheme 4) in
      if a <> b then
        Alcotest.failf "%s: two ~domains:4 runs diverged\nfirst:\n%s\nsecond:\n%s"
          (Backend.scheme_name scheme) (render a) (render b))
    all_schemes

(* ------------------------------------------------------------------ *)
(* Chaos runs: hashed per-channel fault schedule + Reliable. The decider
   consults only (seed, src, dst, channel count), so both runs face the
   same faults; digests must agree across domain counts. *)

let chaos_rates =
  Dpc_net.Transport.fault_config ~drop:0.1 ~duplicate:0.05 ~delay:0.2 ~delay_max:0.01 ()

(* Health invariant shared by every faulted run: at end of run no message
   is still parked on a suspended channel and no channel is still waiting
   on a heal probe — the reliable layer fully drained. *)
let assert_reliable_healthy ~label w =
  match Dpc_engine.Runtime.reliability w.Delp_gen.runtime with
  | None -> Alcotest.failf "%s: runtime lost its reliability layer" label
  | Some r ->
      let s = Dpc_net.Reliable.stats r in
      if s.abandoned > 0 then
        Alcotest.failf "%s: %d messages still parked at end of run" label s.abandoned;
      let stuck = Dpc_net.Reliable.suspended_channels r in
      if stuck > 0 then Alcotest.failf "%s: %d channels still suspended at end of run" label stuck

let chaos_world instance scheme domains =
  let nodes = instance.Delp_gen.nodes in
  let faulty, fstats =
    Dpc_net.Transport.faulty_with
      ~decide:(Dpc_net.Transport.hashed_decide ~config:chaos_rates ~seed:901 ~nodes)
      (shard_transport ~domains ~nodes)
  in
  let w =
    Delp_gen.build_world ~transport:faulty ~reliable:Dpc_net.Reliable.default_config instance
      scheme
  in
  Delp_gen.run_events w instance.events;
  (w, fstats)

let test_chaos_digests () =
  let faults_fired = ref 0 in
  List.iter
    (fun seed ->
      let instance = Delp_gen.generate ~rng:(Dpc_util.Rng.create ~seed) in
      List.iter
        (fun scheme ->
          let base, _ = chaos_world instance scheme 1 in
          assert_reliable_healthy ~label:(Printf.sprintf "seed %d chaos base" seed) base;
          let base_digests = world_digests base in
          List.iter
            (fun domains ->
              let par, fstats = chaos_world instance scheme domains in
              assert_reliable_healthy
                ~label:(Printf.sprintf "seed %d chaos ~domains:%d" seed domains)
                par;
              faults_fired :=
                !faults_fired + Atomic.get fstats.dropped + Atomic.get fstats.duplicated;
              let par_digests = world_digests par in
              if base_digests <> par_digests then
                Alcotest.failf
                  "seed %d, %s, ~domains:%d diverged under faults\nseq:\n%s\npar:\n%s\nprogram:\n%s"
                  seed (Backend.scheme_name scheme) domains (render base_digests)
                  (render par_digests) instance.description)
            (List.tl domain_counts))
        all_schemes)
    [ 1; 2 ];
  check Alcotest.bool "faults actually fired" true (!faults_fired > 0)

(* ------------------------------------------------------------------ *)
(* Crash runs: seeded outages + durable recovery over the sharded
   transport. Crash/restart switches flip on the owning shard via the
   schedule_on-based Durable.schedule_crash path. *)

let crash_world instance scheme domains =
  let nodes = instance.Delp_gen.nodes in
  let crashable, control = Dpc_net.Transport.crashable (shard_transport ~domains ~nodes) in
  let w =
    Delp_gen.build_world ~transport:crashable ~reliable:Dpc_net.Reliable.default_config
      instance scheme
  in
  let durable =
    Durable.attach ~backend:w.Delp_gen.backend ~runtime:w.Delp_gen.runtime ~control
      ~config:{ Durable.checkpoint_every = 8; rebase_every = 4 } ()
  in
  let schedule =
    Durable.random_schedule ~seed:777 ~nodes ~count:2 ~horizon:3.0 ~min_down:0.3 ~max_down:1.0
  in
  Durable.schedule durable schedule;
  Delp_gen.run_events ~spacing:0.4 w instance.events;
  (w, durable, control)

let test_crash_digests () =
  let crashes = ref 0 in
  List.iter
    (fun seed ->
      let instance = Delp_gen.generate ~rng:(Dpc_util.Rng.create ~seed) in
      List.iter
        (fun scheme ->
          let base, _, _ = crash_world instance scheme 1 in
          assert_reliable_healthy ~label:(Printf.sprintf "seed %d crash base" seed) base;
          let base_digests = world_digests base in
          List.iter
            (fun domains ->
              let par, durable, control = crash_world instance scheme domains in
              assert_reliable_healthy
                ~label:(Printf.sprintf "seed %d crash ~domains:%d" seed domains)
                par;
              crashes := !crashes + Atomic.get control.Dpc_net.Transport.crash_stats.crashes;
              for node = 0 to instance.Delp_gen.nodes - 1 do
                if not (Durable.is_up durable node) then
                  Alcotest.failf "seed %d, %s, ~domains:%d: node %d never restarted" seed
                    (Backend.scheme_name scheme) domains node
              done;
              let par_digests = world_digests par in
              if base_digests <> par_digests then
                Alcotest.failf
                  "seed %d, %s, ~domains:%d diverged across crashes\nseq:\n%s\npar:\n%s\nprogram:\n%s"
                  seed (Backend.scheme_name scheme) domains (render base_digests)
                  (render par_digests) instance.description)
            (List.tl domain_counts))
        all_schemes)
    [ 1; 2 ];
  check Alcotest.bool "crashes actually fired" true (!crashes > 0)

(* ------------------------------------------------------------------ *)
(* Query-cache transparency across domain counts: for every schedule
   kind (clean, chaos, crash), every scheme, and every shard count, a
   memoization cache attached after the run must not change one digest —
   the populating pass and the all-hit pass both reproduce the cache-off
   reading of the same world. *)

let test_cache_digests () =
  let hits = ref 0 in
  let instance = Delp_gen.generate ~rng:(Dpc_util.Rng.create ~seed:4) in
  List.iter
    (fun scheme ->
      List.iter
        (fun domains ->
          List.iter
            (fun (kind, w) ->
              let off = world_digests w in
              let cache = Backend.attach_query_cache w.Delp_gen.backend in
              List.iter
                (fun pass ->
                  let on = world_digests w in
                  if off <> on then
                    Alcotest.failf
                      "%s, %s, ~domains:%d: cache-on digests diverged (%s pass)\noff:\n%s\non:\n%s"
                      kind (Backend.scheme_name scheme) domains pass (render off) (render on))
                [ "populating"; "hit" ];
              hits := !hits + (Query_cache.stats cache).hits)
            [
              ("clean", clean_world instance scheme domains);
              ("chaos", fst (chaos_world instance scheme domains));
              ("crash", (let w, _, _ = crash_world instance scheme domains in w));
            ])
        domain_counts)
    all_schemes;
  check Alcotest.bool "cache served hits" true (!hits > 0)

(* ------------------------------------------------------------------ *)
(* Shard partition: total, disjoint, stable. *)

let test_partition () =
  List.iter
    (fun (domains, nodes) ->
      let p = Dpc_net.Shard_sim.partition ~domains ~nodes in
      check Alcotest.int "length" nodes (Array.length p);
      Array.iteri
        (fun n sid ->
          check Alcotest.bool (Printf.sprintf "node %d shard in range" n) true
            (sid >= 0 && sid < domains);
          check Alcotest.int (Printf.sprintf "node %d round-robin" n) (n mod domains) sid)
        p;
      (* Every shard owns at least one node when domains <= nodes. *)
      if domains <= nodes then begin
        let seen = Array.make domains false in
        Array.iter (fun sid -> seen.(sid) <- true) p;
        Array.iteri
          (fun sid s -> check Alcotest.bool (Printf.sprintf "shard %d non-empty" sid) true s)
          seen
      end;
      (* Stable: recomputing gives the same map, and the live transport
         agrees with the pure function. *)
      check Alcotest.bool "stable" true (p = Dpc_net.Shard_sim.partition ~domains ~nodes);
      let s = Dpc_net.Shard_sim.create ~domains ~nodes () in
      Array.iteri
        (fun n sid -> check Alcotest.int "transport agrees" sid (Dpc_net.Shard_sim.shard_of s n))
        p)
    [ (1, 4); (2, 4); (4, 4); (3, 7); (4, 2) ]

let test_partition_invalid () =
  Alcotest.check_raises "zero domains" (Invalid_argument "Shard_sim.partition: domains must be positive")
    (fun () -> ignore (Dpc_net.Shard_sim.partition ~domains:0 ~nodes:4))

(* ------------------------------------------------------------------ *)
(* Metrics under concurrent writers: hammer one registry from several
   domains; the final counters must equal the sequential sum, and a
   merged per-domain snapshot must match a shared-registry snapshot. *)

let test_metrics_concurrent () =
  let writers = 4 and per_writer = 20_000 in
  let shared = Dpc_util.Metrics.create () in
  let locals = Array.init writers (fun _ -> Dpc_util.Metrics.create ()) in
  let work w () =
    for i = 1 to per_writer do
      Dpc_util.Metrics.incr shared "hits";
      Dpc_util.Metrics.incr shared ~by:2 (if i mod 2 = 0 then "even" else "odd");
      Dpc_util.Metrics.incr locals.(w) "hits";
      Dpc_util.Metrics.incr locals.(w) ~by:2 (if i mod 2 = 0 then "even" else "odd");
      Dpc_util.Metrics.observe shared "lat" (float_of_int (i land 7));
      Dpc_util.Metrics.observe locals.(w) "lat" (float_of_int (i land 7))
    done
  in
  let domains = Array.init writers (fun w -> Domain.spawn (work w)) in
  Array.iter Domain.join domains;
  let expected_hits = writers * per_writer in
  let shared_snap = Dpc_util.Metrics.snapshot shared in
  check Alcotest.int "hits = sequential sum" expected_hits
    (Dpc_util.Metrics.counter shared_snap "hits");
  check Alcotest.int "even = sequential sum" (writers * per_writer)
    (Dpc_util.Metrics.counter shared_snap "even");
  check Alcotest.int "odd = sequential sum" (writers * per_writer)
    (Dpc_util.Metrics.counter shared_snap "odd");
  (* Merge of the per-domain registries equals the shared registry: the
     merged snapshot is the cluster-wide truth whichever way the counts
     were collected. *)
  let merged =
    Array.fold_left
      (fun acc r -> Dpc_util.Metrics.merge acc (Dpc_util.Metrics.snapshot r))
      Dpc_util.Metrics.empty locals
  in
  if merged <> shared_snap then Alcotest.fail "merged per-domain snapshot <> shared snapshot"

(* A torn read would surface as an internally inconsistent snapshot:
   sample counters while writers are live and check monotonicity. *)
let test_metrics_snapshot_consistent () =
  let m = Dpc_util.Metrics.create () in
  let stop = Atomic.make false in
  let writer () =
    while not (Atomic.get stop) do
      Dpc_util.Metrics.incr m "a";
      Dpc_util.Metrics.incr m "b"
    done
  in
  let w1 = Domain.spawn writer and w2 = Domain.spawn writer in
  let last = ref 0 in
  for _ = 1 to 1_000 do
    let v = Dpc_util.Metrics.counter_value m "a" in
    check Alcotest.bool "counter monotone under writers" true (v >= !last);
    last := v
  done;
  Atomic.set stop true;
  Domain.join w1;
  Domain.join w2

let () =
  Alcotest.run "dpc_scaling"
    [
      ( "determinism",
        [
          Alcotest.test_case "clean digests across domains" `Quick test_clean_digests;
          Alcotest.test_case "run-to-run at 4 domains" `Quick test_run_to_run;
          Alcotest.test_case "chaos digests across domains" `Quick test_chaos_digests;
          Alcotest.test_case "crash digests across domains" `Slow test_crash_digests;
          Alcotest.test_case "cache transparency across domains" `Quick test_cache_digests;
        ] );
      ( "partition",
        [
          Alcotest.test_case "round-robin total and stable" `Quick test_partition;
          Alcotest.test_case "invalid arguments" `Quick test_partition_invalid;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "concurrent counters sum" `Quick test_metrics_concurrent;
          Alcotest.test_case "snapshot consistent under writers" `Quick
            test_metrics_snapshot_consistent;
        ] );
    ]
