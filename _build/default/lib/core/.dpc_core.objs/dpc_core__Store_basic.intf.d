lib/core/store_basic.mli: Dpc_engine Dpc_ndlog Dpc_net Dpc_util Query_cost Query_result Rows
