type t = {
  topology : Topology.t;
  (* successor.(src).(dst) is the next hop from src toward dst, -1 if none. *)
  successor : int array array;
  dist : float array array;
}

let dijkstra topo src =
  let n = Topology.size topo in
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  dist.(src) <- 0.0;
  let heap = Dpc_util.Heap.create ~cmp:(fun (d1, _) (d2, _) -> compare d1 d2) in
  Dpc_util.Heap.push heap (0.0, src);
  let rec go () =
    match Dpc_util.Heap.pop heap with
    | None -> ()
    | Some (d, v) ->
        if d <= dist.(v) then
          List.iter
            (fun (w, (l : Topology.link)) ->
              let nd = d +. l.latency in
              if nd < dist.(w) then begin
                dist.(w) <- nd;
                pred.(w) <- v;
                Dpc_util.Heap.push heap (nd, w)
              end)
            (Topology.neighbors topo v);
        go ()
  in
  go ();
  (dist, pred)

let compute topo =
  let n = Topology.size topo in
  let successor = Array.make_matrix n n (-1) in
  let dist = Array.make_matrix n n infinity in
  for src = 0 to n - 1 do
    let d, pred = dijkstra topo src in
    for dst = 0 to n - 1 do
      dist.(src).(dst) <- d.(dst);
      if dst <> src && d.(dst) < infinity then begin
        (* Walk predecessors back from dst to find the hop after src. *)
        let rec first_hop v = if pred.(v) = src then v else first_hop pred.(v) in
        successor.(src).(dst) <- first_hop dst
      end
    done
  done;
  { topology = topo; successor; dist }

let next_hop t ~src ~dst =
  let h = t.successor.(src).(dst) in
  if h = -1 then None else Some h

let path t ~src ~dst =
  if src = dst then Some [ src ]
  else if t.successor.(src).(dst) = -1 then None
  else begin
    let rec go v acc =
      if v = dst then List.rev (dst :: acc)
      else go t.successor.(v).(dst) (v :: acc)
    in
    Some (go src [])
  end

let distance t ~src ~dst =
  let d = t.dist.(src).(dst) in
  if d = infinity then None else Some d

let hop_count t ~src ~dst =
  match path t ~src ~dst with None -> None | Some p -> Some (List.length p - 1)

let mean_pair_distance t =
  let n = Topology.size t.topology in
  let total = ref 0 and count = ref 0 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then
        match hop_count t ~src ~dst with
        | Some h ->
            total := !total + h;
            incr count
        | None -> ()
    done
  done;
  if !count = 0 then 0.0 else float_of_int !total /. float_of_int !count

let diameter t =
  let n = Topology.size t.topology in
  let best = ref 0 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      match hop_count t ~src ~dst with
      | Some h -> if h > !best then best := h
      | None -> ()
    done
  done;
  !best
