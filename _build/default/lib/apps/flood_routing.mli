(** A TTL-bounded route-advertisement protocol as a DELP.

    §3.2 of the paper notes that slow-changing tuples such as [route] are
    themselves derived by another application, and that a user who wants a
    route's provenance should declare [route] a relation of interest *in
    that application* and query it separately. This app is that other
    application: advertisements flood outward from a destination,
    accumulating path cost, and every node within the TTL records a route
    candidate — whose provenance explains exactly which links produced it.

    Rules:

    {v
    r1 adv(@N, D, C)       :- adv(@L, D, C0), linkCost(@L, N, C1),
                              C0 < <ttl>, C := C0 + C1.
    r2 routeCand(@L, D, C) :- adv(@L, D, C), C <= <maxCost>.
    v}

    The equivalence keys are [(adv:0, adv:2)] — the flooding pattern
    depends on where an advertisement is and its accumulated cost, not on
    which destination it advertises, so advertisements for different
    destinations share provenance chains. *)

val source : string
val delp : unit -> Dpc_ndlog.Delp.t
val env : Dpc_engine.Env.t

val adv : at:int -> dst:int -> cost:int -> Dpc_ndlog.Tuple.t
(** The input event; inject [adv ~at:d ~dst:d ~cost:0] to announce
    destination [d]. *)

val link_cost : at:int -> next:int -> cost:int -> Dpc_ndlog.Tuple.t
val route_cand : at:int -> dst:int -> cost:int -> Dpc_ndlog.Tuple.t

val link_costs_of_topology : Dpc_net.Topology.t -> Dpc_ndlog.Tuple.t list
(** One [linkCost] tuple per directed link, cost 1. *)
