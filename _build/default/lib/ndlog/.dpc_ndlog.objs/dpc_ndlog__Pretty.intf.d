lib/ndlog/pretty.mli: Ast Format
