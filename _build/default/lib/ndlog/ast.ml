type term = Var of string | Const of Value.t
type atom = { rel : string; args : term list }
type binop = Add | Sub | Mul | Div | Mod

type expr =
  | E_var of string
  | E_const of Value.t
  | E_binop of binop * expr * expr
  | E_call of string * expr list

type cmp = Eq | Neq | Lt | Leq | Gt | Geq

type cond =
  | C_atom of atom
  | C_cmp of cmp * expr * expr
  | C_assign of string * expr

type rule = { name : string; head : atom; event : atom; conds : cond list }
type program = { prog_name : string; rules : rule list }

let dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let atom_vars a =
  dedup (List.filter_map (function Var v -> Some v | Const _ -> None) a.args)

let rec expr_vars_acc acc = function
  | E_var v -> v :: acc
  | E_const _ -> acc
  | E_binop (_, a, b) -> expr_vars_acc (expr_vars_acc acc a) b
  | E_call (_, args) -> List.fold_left expr_vars_acc acc args

let expr_vars e = dedup (List.rev (expr_vars_acc [] e))

let cond_vars = function
  | C_atom a -> atom_vars a
  | C_cmp (_, a, b) -> dedup (expr_vars a @ expr_vars b)
  | C_assign (x, e) -> dedup (x :: expr_vars e)

let rule_body_atoms r =
  r.event :: List.filter_map (function C_atom a -> Some a | C_cmp _ | C_assign _ -> None) r.conds

let var_positions a =
  List.filteri (fun _ _ -> true) a.args
  |> List.mapi (fun i t -> (i, t))
  |> List.filter_map (function i, Var v -> Some (v, i) | _, Const _ -> None)

let equal_term a b =
  match a, b with
  | Var x, Var y -> String.equal x y
  | Const x, Const y -> Value.equal x y
  | (Var _ | Const _), _ -> false

let map_term f = function Var v -> Var (f v) | Const c -> Const c
let map_atom f a = { a with args = List.map (map_term f) a.args }

let rec map_expr f = function
  | E_var v -> E_var (f v)
  | E_const c -> E_const c
  | E_binop (op, a, b) -> E_binop (op, map_expr f a, map_expr f b)
  | E_call (name, args) -> E_call (name, List.map (map_expr f) args)

let map_cond f = function
  | C_atom a -> C_atom (map_atom f a)
  | C_cmp (op, a, b) -> C_cmp (op, map_expr f a, map_expr f b)
  | C_assign (x, e) -> C_assign (f x, map_expr f e)

let map_rule_vars f r =
  {
    r with
    head = map_atom f r.head;
    event = map_atom f r.event;
    conds = List.map (map_cond f) r.conds;
  }

let rule_vars_in_order r =
  let ordered = ref [] in
  let note v = ordered := v :: !ordered in
  let term = function Var v -> note v | Const _ -> () in
  let atom (a : atom) = List.iter term a.args in
  let rec expr = function
    | E_var v -> note v
    | E_const _ -> ()
    | E_binop (_, a, b) ->
        expr a;
        expr b
    | E_call (_, args) -> List.iter expr args
  in
  atom r.head;
  atom r.event;
  List.iter
    (function
      | C_atom a -> atom a
      | C_cmp (_, a, b) ->
          expr a;
          expr b
      | C_assign (x, e) ->
          note x;
          expr e)
    r.conds;
  dedup (List.rev !ordered)
