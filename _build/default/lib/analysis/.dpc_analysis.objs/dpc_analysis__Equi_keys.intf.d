lib/analysis/equi_keys.mli: Dpc_ndlog Dpc_util Format
