examples/dns_resolution.mli:
