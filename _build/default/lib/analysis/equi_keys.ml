open Dpc_ndlog

type t = { delp : Delp.t; keys : int list }

let compute (delp : Delp.t) =
  let g = Depgraph.build delp in
  let event = delp.input_event in
  let arity = Delp.event_arity delp in
  let keys =
    List.init arity (fun i -> i)
    |> List.filter (fun i ->
         i = 0 || Depgraph.reaches_anchor g { Depgraph.rel = event; idx = i })
  in
  { delp; keys }

let delp t = t.delp
let keys t = t.keys

let key_values t ev =
  if not (String.equal (Tuple.rel ev) t.delp.input_event) then
    invalid_arg
      (Printf.sprintf "Equi_keys.key_values: expected a %S event tuple"
         t.delp.input_event);
  List.map (Tuple.arg ev) t.keys

let key_hash t ev =
  Dpc_util.Sha1.digest_concat (List.map Value.canonical (key_values t ev))

let equivalent t ev1 ev2 =
  List.for_all2 Value.equal (key_values t ev1) (key_values t ev2)

let pp fmt t =
  Format.fprintf fmt "equivalence keys of %s: {%s}" t.delp.input_event
    (String.concat ", "
       (List.map (fun i -> Printf.sprintf "%s:%d" t.delp.input_event i) t.keys))
