lib/core/replay.ml: Delp Dpc_engine Dpc_ndlog Dpc_net Dpc_util List Query_cost Query_result Store_exspan Tuple
