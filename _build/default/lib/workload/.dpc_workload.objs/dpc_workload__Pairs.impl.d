lib/workload/pairs.ml: Array Dpc_util Hashtbl List
