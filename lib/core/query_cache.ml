type entry = {
  trees : Prov_tree.t list;
  deps : (int * int) list;  (* (node, generation when read) *)
  mutable last_use : int;
}

type t = {
  table : (string, entry) Hashtbl.t;
  capacity : int;
  tick : node:int -> string -> int -> unit;
  mutable clock : int;  (* monotone use counter driving LRU eviction *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  lock : Mutex.t;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  size : int;
}

let default_capacity = 4096

let create ?(capacity = default_capacity) ~tick () =
  if capacity < 1 then invalid_arg "Query_cache.create: capacity must be positive";
  {
    table = Hashtbl.create 256;
    capacity;
    tick;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    lock = Mutex.create ();
  }

let key ~loc ~rid ~ctx =
  let b = Buffer.create (8 + 20 + String.length ctx) in
  Buffer.add_string b (string_of_int loc);
  Buffer.add_char b '|';
  Buffer.add_string b (Dpc_util.Sha1.to_raw rid);
  Buffer.add_string b ctx;
  Buffer.contents b

let find t ~querier ~up ~gen key =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.table key with
      | None ->
          t.misses <- t.misses + 1;
          t.tick ~node:querier "query.cache.miss" 1;
          None
      | Some entry ->
          if List.exists (fun (node, _) -> not (up node)) entry.deps then begin
            (* A dep is down: the real walk degrades exactly as it would
               cache-off, so this must be a miss — but the entry itself is
               still valid once the node is back, so keep it. *)
            t.misses <- t.misses + 1;
            t.tick ~node:querier "query.cache.miss" 1;
            None
          end
          else if List.exists (fun (node, g) -> gen node <> g) entry.deps then begin
            Hashtbl.remove t.table key;
            t.invalidations <- t.invalidations + 1;
            t.tick ~node:querier "query.cache.invalidate" 1;
            t.misses <- t.misses + 1;
            t.tick ~node:querier "query.cache.miss" 1;
            None
          end
          else begin
            t.clock <- t.clock + 1;
            entry.last_use <- t.clock;
            t.hits <- t.hits + 1;
            t.tick ~node:querier "query.cache.hit" 1;
            Some entry.trees
          end)

(* Over capacity: drop the least-recently-used half in one sweep. Cheaper
   than a per-hit ordering structure, and the cache is consulted far more
   often than it overflows. *)
let evict_locked t ~querier =
  let uses = Hashtbl.fold (fun _ e acc -> e.last_use :: acc) t.table [] in
  let sorted = List.sort compare uses in
  let keep = max 1 (t.capacity / 2) in
  let cutoff = List.nth sorted (List.length sorted - keep) in
  let doomed =
    Hashtbl.fold (fun k e acc -> if e.last_use < cutoff then k :: acc else acc) t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed;
  let n = List.length doomed in
  t.evictions <- t.evictions + n;
  if n > 0 then t.tick ~node:querier "query.cache.evict" n

let add t ~querier ~deps key trees =
  Mutex.protect t.lock (fun () ->
      t.clock <- t.clock + 1;
      Hashtbl.replace t.table key { trees; deps; last_use = t.clock };
      if Hashtbl.length t.table > t.capacity then evict_locked t ~querier)

let invalidate_node t node =
  Mutex.protect t.lock (fun () ->
      let doomed =
        Hashtbl.fold
          (fun k e acc -> if List.mem_assoc node e.deps then k :: acc else acc)
          t.table []
      in
      List.iter (Hashtbl.remove t.table) doomed;
      let n = List.length doomed in
      t.invalidations <- t.invalidations + n;
      if n > 0 then t.tick ~node "query.cache.invalidate" n)

let clear t = Mutex.protect t.lock (fun () -> Hashtbl.reset t.table)

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        invalidations = t.invalidations;
        size = Hashtbl.length t.table;
      })

let capacity t = t.capacity
