module Clock = Dpc_util.Clock
module Heap = Dpc_util.Heap
module Serialize = Dpc_util.Serialize

type config = { retransmit_every : float; dial_retry : float; hold_cap : int }

let default_config = { retransmit_every = 0.25; dial_retry = 0.2; hold_cap = 1024 }

type persist_event =
  | Sent of { dst : int; seq : int; payload : string }
  | Acked of { dst : int; seq : int }
  | Expected of { src : int; seq : int }

type stats = {
  data_sent : int;
  data_received : int;
  retransmits : int;
  dup_dropped : int;
  held : int;
  acks_sent : int;
  reconnects : int;
  chaos_dropped : int;
  chaos_duplicated : int;
  chaos_delayed : int;
  blocked_drops : int;
}

type addr = A_unix of string | A_tcp of string * int

let parse_addr s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      let path = String.sub s (i + 1) (String.length s - i - 1) in
      if path = "" then invalid_arg "Socket: empty unix path";
      A_unix path
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | Some j ->
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          (match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 -> A_tcp (host, p)
          | _ -> invalid_arg (Printf.sprintf "Socket: bad port in %S" s))
      | None -> invalid_arg (Printf.sprintf "Socket: tcp address %S needs host:port" s))
  | _ -> invalid_arg (Printf.sprintf "Socket: address %S is not unix:<path> or tcp:<host>:<port>" s)

let sockaddr_of = function
  | A_unix path -> Unix.ADDR_UNIX path
  | A_tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with _ -> invalid_arg (Printf.sprintf "Socket: cannot resolve host %S" host))
      in
      Unix.ADDR_INET (ip, port)

type conn = {
  fd : Unix.file_descr;
  decoder : Wire.Decoder.t;
  outq : string Queue.t;  (* encoded frames awaiting the wire *)
  mutable out_off : int;  (* bytes of the queue head already written *)
  mutable peer : int;  (* -1 until the hello arrives *)
  mutable connecting : bool;  (* outgoing dial, connect not yet resolved *)
  mutable closed : bool;
  outbound_to : int option;  (* [Some dst] on our dial to a peer *)
}

type out_chan = {
  mutable next_seq : int;  (* next sequence to assign; 1-based *)
  mutable o_acked : int;  (* highest cumulatively acked sequence *)
  unacked : (int, string) Hashtbl.t;
}

type in_chan = {
  mutable expected : int;  (* next sequence we will deliver *)
  held_frames : (int, string) Hashtbl.t;  (* arrived early, waiting for the gap *)
  mutable ack_due : bool;
}

type timer = { at : float; tie : int; fn : unit -> unit }

type t = {
  nodes : int;
  local : int;
  addrs : addr array;
  config : config;
  epoch : float;
  listen_fd : Unix.file_descr;
  listen_path : string option;
  scratch : Bytes.t;
  mutable conns : conn list;
  out_conns : (int, conn) Hashtbl.t;
  redial_armed : (int, unit) Hashtbl.t;
  out_chans : (int, out_chan) Hashtbl.t;
  in_chans : (int, in_chan) Hashtbl.t;
  timers : timer Heap.t;
  mutable timer_tie : int;
  mutable deliver : (src:int -> payload:string -> unit) option;
  mutable control : (payload:string -> reply:(string -> unit) -> unit) option;
  mutable persist : (persist_event -> unit) option;
  mutable sync : (unit -> unit) option;
  mutable delivered_any : bool;
  mutable stopped : bool;
  mutable bytes_total : int;
  mutable msgs_total : int;
  mutable m_data_sent : int;
  mutable m_data_received : int;
  mutable m_retransmits : int;
  mutable m_dup_dropped : int;
  mutable m_held : int;
  mutable m_acks_sent : int;
  mutable m_reconnects : int;
  (* Injectable link faults: [blocked] peers are a process-level partition
     (dials refused, established connections dropped, inbound frames
     eaten); [chaos] corrupts outgoing data frames the way
     [Transport.faulty] corrupts simulated sends. *)
  blocked : (int, unit) Hashtbl.t;
  mutable chaos : (src:int -> dst:int -> bytes:int -> Transport.fault) option;
  mutable m_chaos_dropped : int;
  mutable m_chaos_duplicated : int;
  mutable m_chaos_delayed : int;
  mutable m_blocked_drops : int;
}

let now t = Clock.now () -. t.epoch

let persist t ev = match t.persist with Some f -> f ev | None -> ()

let schedule_at t at fn =
  t.timer_tie <- t.timer_tie + 1;
  Heap.push t.timers { at; tie = t.timer_tie; fn }

let out_chan_of t dst =
  match Hashtbl.find_opt t.out_chans dst with
  | Some ch -> ch
  | None ->
      let ch = { next_seq = 1; o_acked = 0; unacked = Hashtbl.create 16 } in
      Hashtbl.replace t.out_chans dst ch;
      ch

let in_chan_of t src =
  match Hashtbl.find_opt t.in_chans src with
  | Some ch -> ch
  | None ->
      let ch = { expected = 1; held_frames = Hashtbl.create 16; ack_due = false } in
      Hashtbl.replace t.in_chans src ch;
      ch

let conn_alive c = not (c.closed || c.connecting)

let outq_bytes c = Queue.fold (fun acc s -> acc + String.length s) (-c.out_off) c.outq

(* ---- wire I/O ------------------------------------------------------- *)

let rec flush_conn t c =
  if (not c.closed) && not (Queue.is_empty c.outq) then begin
    let head = Queue.peek c.outq in
    let len = String.length head - c.out_off in
    match Unix.write_substring c.fd head c.out_off len with
    | n ->
        if n = len then begin
          ignore (Queue.pop c.outq);
          c.out_off <- 0;
          flush_conn t c
        end
        else c.out_off <- c.out_off + n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> close_conn t c
  end

and close_conn t c =
  if not c.closed then begin
    c.closed <- true;
    (try Unix.close c.fd with _ -> ());
    t.conns <- List.filter (fun c' -> c' != c) t.conns;
    match c.outbound_to with
    | Some dst ->
        (match Hashtbl.find_opt t.out_conns dst with
        | Some c' when c' == c -> Hashtbl.remove t.out_conns dst
        | _ -> ());
        arm_redial t dst
    | None -> ()
  end

and arm_redial t dst =
  if not (Hashtbl.mem t.redial_armed dst) then begin
    Hashtbl.replace t.redial_armed dst ();
    schedule_at t
      (now t +. t.config.dial_retry)
      (fun () ->
        Hashtbl.remove t.redial_armed dst;
        if want_peer t dst then ensure_dial t dst)
  end

(* A peer is worth (re)dialing while we owe it data or acks. *)
and want_peer t dst =
  (match Hashtbl.find_opt t.out_chans dst with
  | Some ch -> Hashtbl.length ch.unacked > 0
  | None -> false)
  || Hashtbl.mem t.in_chans dst

and ensure_dial t dst =
  if
    dst <> t.local && dst >= 0 && dst < t.nodes
    && (not (Hashtbl.mem t.out_conns dst))
    && not (Hashtbl.mem t.blocked dst)
  then begin
    let sa = sockaddr_of t.addrs.(dst) in
    let domain = Unix.domain_of_sockaddr sa in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    let mk connecting =
      {
        fd;
        decoder = Wire.Decoder.create ();
        outq = Queue.create ();
        out_off = 0;
        peer = dst;
        connecting;
        closed = false;
        outbound_to = Some dst;
      }
    in
    match Unix.connect fd sa with
    | () ->
        let c = mk false in
        t.conns <- c :: t.conns;
        Hashtbl.replace t.out_conns dst c;
        dial_connected t dst c
    | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _) ->
        let c = mk true in
        t.conns <- c :: t.conns;
        Hashtbl.replace t.out_conns dst c
    | exception Unix.Unix_error (_, _, _) ->
        (try Unix.close fd with _ -> ());
        arm_redial t dst
  end

and enqueue_frame t c frame_bytes =
  if not c.closed then begin
    Queue.push frame_bytes c.outq;
    flush_conn t c
  end

and dial_connected t dst c =
  t.m_reconnects <- t.m_reconnects + 1;
  enqueue_frame t c (Wire.encode { kind = Hello; src = t.local; dst; seq = 0; payload = "" });
  resend_unacked t dst c ~count_retransmits:false;
  match Hashtbl.find_opt t.in_chans dst with
  | Some ch ->
      ch.ack_due <- false;
      send_ack_frame t dst c ch
  | None -> ()

and resend_unacked t dst _c ~count_retransmits =
  match Hashtbl.find_opt t.out_chans dst with
  | None -> ()
  | Some ch ->
      for seq = ch.o_acked + 1 to ch.next_seq - 1 do
        match Hashtbl.find_opt ch.unacked seq with
        | Some payload ->
            if count_retransmits then t.m_retransmits <- t.m_retransmits + 1;
            transmit_data t dst (Wire.encode { kind = Data; src = t.local; dst; seq; payload })
        | None -> ()
      done

(* Every outgoing data frame funnels through here so link chaos has one
   injection point. A dropped frame never reaches the wire — it stays in
   the unacked set and the retransmit scan re-offers it; a duplicate is
   enqueued twice (the peer's dedup window eats the copy); a delayed
   frame is re-offered by a timer, re-checking the connection then. *)
and transmit_data t dst wire =
  let enqueue () =
    match Hashtbl.find_opt t.out_conns dst with
    | Some c when conn_alive c -> enqueue_frame t c wire
    | Some _ -> ()
    | None -> ensure_dial t dst
  in
  match t.chaos with
  | None -> enqueue ()
  | Some decide -> (
      match decide ~src:t.local ~dst ~bytes:(String.length wire) with
      | Transport.F_deliver -> enqueue ()
      | Transport.F_drop -> t.m_chaos_dropped <- t.m_chaos_dropped + 1
      | Transport.F_duplicate ->
          t.m_chaos_duplicated <- t.m_chaos_duplicated + 1;
          enqueue ();
          enqueue ()
      | Transport.F_delay extra ->
          t.m_chaos_delayed <- t.m_chaos_delayed + 1;
          schedule_at t (now t +. extra) enqueue)

and send_ack_frame t peer c ch =
  t.m_acks_sent <- t.m_acks_sent + 1;
  enqueue_frame t c
    (Wire.encode { kind = Ack; src = t.local; dst = peer; seq = ch.expected - 1; payload = "" })

let send_ack t peer =
  let ch = in_chan_of t peer in
  match Hashtbl.find_opt t.out_conns peer with
  | Some c when conn_alive c ->
      ch.ack_due <- false;
      send_ack_frame t peer c ch
  | _ ->
      ch.ack_due <- true;
      ensure_dial t peer

(* ---- the data plane -------------------------------------------------- *)

let send_payload t ~dst payload =
  if dst < 0 || dst >= t.nodes then invalid_arg "Socket.send_payload: destination out of range";
  if dst = t.local then
    invalid_arg "Socket.send_payload: local destination goes through Transport.send";
  let ch = out_chan_of t dst in
  let seq = ch.next_seq in
  ch.next_seq <- seq + 1;
  persist t (Sent { dst; seq; payload });
  Hashtbl.replace ch.unacked seq payload;
  t.m_data_sent <- t.m_data_sent + 1;
  t.msgs_total <- t.msgs_total + 1;
  let wire = Wire.encode { kind = Data; src = t.local; dst; seq; payload } in
  t.bytes_total <- t.bytes_total + String.length wire;
  transmit_data t dst wire

let deliver_in_order t src ch first_payload =
  let deliver_one payload =
    let seq = ch.expected in
    persist t (Expected { src; seq = seq + 1 });
    ch.expected <- seq + 1;
    t.m_data_received <- t.m_data_received + 1;
    t.delivered_any <- true;
    match t.deliver with Some f -> f ~src ~payload | None -> ()
  in
  deliver_one first_payload;
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt ch.held_frames ch.expected with
    | Some payload ->
        Hashtbl.remove ch.held_frames ch.expected;
        deliver_one payload
    | None -> continue := false
  done;
  ch.ack_due <- true

let handle_frame t c (f : Wire.frame) =
  match f.kind with
  | Hello ->
      c.peer <- f.src;
      (* A blocked peer's dial is refused at the handshake: the partition
         is symmetric from this endpoint's point of view. *)
      if Hashtbl.mem t.blocked f.src then close_conn t c
  | Data when Hashtbl.mem t.blocked f.src ->
      t.m_blocked_drops <- t.m_blocked_drops + 1
  | Data ->
      if f.dst = t.local then begin
        let ch = in_chan_of t f.src in
        if f.seq < ch.expected then begin
          t.m_dup_dropped <- t.m_dup_dropped + 1;
          ch.ack_due <- true
        end
        else if f.seq = ch.expected then deliver_in_order t f.src ch f.payload
        else if
          Hashtbl.length ch.held_frames < t.config.hold_cap
          && not (Hashtbl.mem ch.held_frames f.seq)
        then begin
          Hashtbl.replace ch.held_frames f.seq f.payload;
          t.m_held <- t.m_held + 1
        end
      end
  | Ack when Hashtbl.mem t.blocked f.src ->
      t.m_blocked_drops <- t.m_blocked_drops + 1
  | Ack ->
      let ch = out_chan_of t f.src in
      if f.seq > ch.o_acked then begin
        for s = ch.o_acked + 1 to f.seq do
          Hashtbl.remove ch.unacked s
        done;
        ch.o_acked <- f.seq;
        persist t (Acked { dst = f.src; seq = f.seq })
      end
  | Ctrl -> (
      match t.control with
      | Some h ->
          let reply s =
            enqueue_frame t c
              (Wire.encode { kind = Ctrl; src = t.local; dst = Wire.control_id; seq = f.seq; payload = s })
          in
          h ~payload:f.payload ~reply
      | None -> ())

let read_conn t c =
  let continue = ref true in
  while !continue && not c.closed do
    match Unix.read c.fd t.scratch 0 (Bytes.length t.scratch) with
    | 0 ->
        close_conn t c;
        continue := false
    | n -> Wire.Decoder.feed c.decoder t.scratch 0 n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> continue := false
    | exception Unix.Unix_error (_, _, _) ->
        close_conn t c;
        continue := false
  done;
  (* Drain complete frames; a corrupt stream drops the connection (the
     peer's retransmit discipline recovers anything undelivered). *)
  try
    let more = ref true in
    while !more && not c.closed do
      match Wire.Decoder.next c.decoder with
      | Some f -> handle_frame t c f
      | None -> more := false
    done
  with Wire.Corrupt _ -> close_conn t c

let accept_pending t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        t.conns <-
          {
            fd;
            decoder = Wire.Decoder.create ();
            outq = Queue.create ();
            out_off = 0;
            peer = -1;
            connecting = false;
            closed = false;
            outbound_to = None;
          }
          :: t.conns
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> continue := false
    | exception Unix.Unix_error (_, _, _) -> continue := false
  done

let check_connect t c =
  match Unix.getsockopt_error c.fd with
  | None ->
      c.connecting <- false;
      (match c.outbound_to with Some dst -> dial_connected t dst c | None -> ())
  | Some _ -> close_conn t c

(* After every receive batch: flush effects to disk, then let the acks out.
   The order is the whole point — an ack is a durable promise. *)
let finish_batch t =
  if t.delivered_any then begin
    (match t.sync with Some f -> f () | None -> ());
    t.delivered_any <- false
  end;
  Hashtbl.iter (fun src ch -> if ch.ack_due then send_ack t src) t.in_chans

let fire_due_timers t =
  let continue = ref true in
  while !continue do
    match Heap.peek t.timers with
    | Some tm when tm.at <= now t ->
        ignore (Heap.pop t.timers);
        tm.fn ()
    | _ -> continue := false
  done

let retransmit_scan t =
  Hashtbl.iter
    (fun dst ch ->
      if Hashtbl.length ch.unacked > 0 then
        match Hashtbl.find_opt t.out_conns dst with
        | Some c when conn_alive c ->
            (* Skip while a previous burst is still draining: re-queueing
               on a congested connection only amplifies the backlog. *)
            if outq_bytes c < 1 lsl 20 then resend_unacked t dst c ~count_retransmits:true
        | Some _ -> ()
        | None -> ensure_dial t dst)
    t.out_chans;
  Hashtbl.iter
    (fun src ch ->
      if ch.ack_due then
        match Hashtbl.find_opt t.out_conns src with
        | Some c when conn_alive c ->
            ch.ack_due <- false;
            send_ack_frame t src c ch
        | _ -> ensure_dial t src)
    t.in_chans

let run_loop t ?until () =
  let horizon_open () = match until with Some u -> now t < u | None -> true in
  while (not t.stopped) && horizon_open () do
    fire_due_timers t;
    if (not t.stopped) && horizon_open () then begin
      let conns = t.conns in
      List.iter (fun c -> if (not c.closed) && not (Queue.is_empty c.outq) then flush_conn t c) conns;
      let rd =
        t.listen_fd
        :: List.filter_map (fun c -> if conn_alive c then Some c.fd else None) t.conns
      in
      let wr =
        List.filter_map
          (fun c ->
            if c.closed then None
            else if c.connecting || not (Queue.is_empty c.outq) then Some c.fd
            else None)
          t.conns
      in
      let tnow = now t in
      let timeout =
        let cap acc = function Some x -> Float.min acc x | None -> acc in
        let upper =
          cap (cap 0.05 (Option.map (fun u -> u -. tnow) until))
            (match Heap.peek t.timers with Some tm -> Some (tm.at -. tnow) | None -> None)
        in
        Float.max 0. upper
      in
      match Unix.select rd wr [] timeout with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | readable, writable, _ ->
          if List.memq t.listen_fd readable then accept_pending t;
          let conn_of fd = List.find_opt (fun c -> c.fd == fd && not c.closed) t.conns in
          List.iter
            (fun fd ->
              match conn_of fd with
              | Some c when c.connecting -> check_connect t c
              | Some c -> flush_conn t c
              | None -> ())
            writable;
          List.iter
            (fun fd ->
              if fd != t.listen_fd then
                match conn_of fd with Some c when not c.connecting -> read_conn t c | _ -> ())
            readable;
          finish_batch t
    end
  done

(* ---- lifecycle ------------------------------------------------------- *)

let create ~nodes ~local ~addr_of ?(config = default_config) () =
  if nodes <= 0 then invalid_arg "Socket.create: nodes must be positive";
  if local < 0 || local >= nodes then invalid_arg "Socket.create: local node out of range";
  let addrs = Array.init nodes (fun i -> parse_addr (addr_of i)) in
  let listen_path = match addrs.(local) with A_unix p -> Some p | A_tcp _ -> None in
  (match listen_path with
  | Some p when Sys.file_exists p -> ( try Unix.unlink p with _ -> ())
  | _ -> ());
  let sa = sockaddr_of addrs.(local) in
  let listen_fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  (match addrs.(local) with
  | A_tcp _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
  | A_unix _ -> ());
  (try
     Unix.bind listen_fd sa;
     Unix.listen listen_fd 64;
     Unix.set_nonblock listen_fd
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  let t =
    {
      nodes;
      local;
      addrs;
      config;
      epoch = Clock.now ();
      listen_fd;
      listen_path;
      scratch = Bytes.create 65536;
      conns = [];
      out_conns = Hashtbl.create 8;
      redial_armed = Hashtbl.create 8;
      out_chans = Hashtbl.create 8;
      in_chans = Hashtbl.create 8;
      timers = Heap.create ~cmp:(fun a b -> compare (a.at, a.tie) (b.at, b.tie));
      timer_tie = 0;
      deliver = None;
      control = None;
      persist = None;
      sync = None;
      delivered_any = false;
      stopped = false;
      bytes_total = 0;
      msgs_total = 0;
      m_data_sent = 0;
      m_data_received = 0;
      m_retransmits = 0;
      m_dup_dropped = 0;
      m_held = 0;
      m_acks_sent = 0;
      m_reconnects = 0;
      blocked = Hashtbl.create 4;
      chaos = None;
      m_chaos_dropped = 0;
      m_chaos_duplicated = 0;
      m_chaos_delayed = 0;
      m_blocked_drops = 0;
    }
  in
  let rec scan () =
    if not t.stopped then begin
      retransmit_scan t;
      schedule_at t (now t +. t.config.retransmit_every) scan
    end
  in
  schedule_at t (now t +. t.config.retransmit_every) scan;
  t

let set_deliver t f = t.deliver <- Some f
let set_control t f = t.control <- Some f
let set_persist t f = t.persist <- Some f
let set_sync t f = t.sync <- Some f

let set_chaos t ~config ~seed =
  t.chaos <- Some (Transport.hashed_decide ~config ~seed ~nodes:t.nodes)

let clear_chaos t = t.chaos <- None

let set_peer_blocked t ~peer blocked =
  if peer < 0 || peer >= t.nodes || peer = t.local then
    invalid_arg "Socket.set_peer_blocked: peer out of range";
  if blocked && not (Hashtbl.mem t.blocked peer) then begin
    Hashtbl.replace t.blocked peer ();
    (* Cut the established paths both ways: our dial to the peer and any
       inbound connection it holds to us. Frames already buffered die
       with the connection; the peer's (and our) retransmit discipline
       recovers them after the heal. *)
    (match Hashtbl.find_opt t.out_conns peer with
    | Some c -> close_conn t c
    | None -> ());
    List.iter (fun c -> if c.peer = peer then close_conn t c) t.conns
  end
  else if (not blocked) && Hashtbl.mem t.blocked peer then begin
    Hashtbl.remove t.blocked peer;
    (* Heal: redial eagerly if we owe the peer anything; the reconnect
       handshake re-offers the whole unacked tail. *)
    if want_peer t peer then ensure_dial t peer
  end

let peer_blocked t ~peer = Hashtbl.mem t.blocked peer

let set_next_seq t ~dst v =
  let ch = out_chan_of t dst in
  if v > ch.next_seq then ch.next_seq <- v

let set_expected t ~src v =
  let ch = in_chan_of t src in
  if v > ch.expected then begin
    ch.expected <- v;
    Hashtbl.iter (fun s _ -> if s < v then Hashtbl.remove ch.held_frames s) (Hashtbl.copy ch.held_frames)
  end

let set_acked t ~dst v =
  let ch = out_chan_of t dst in
  if v > ch.o_acked then begin
    for s = ch.o_acked + 1 to v do
      Hashtbl.remove ch.unacked s
    done;
    ch.o_acked <- v
  end

let sender_next_seq t ~dst = (out_chan_of t dst).next_seq

let requeue t ~dst ~seq payload =
  let ch = out_chan_of t dst in
  if seq > ch.o_acked then begin
    Hashtbl.replace ch.unacked seq payload;
    if seq >= ch.next_seq then ch.next_seq <- seq + 1;
    ensure_dial t dst
  end

let chan_magic = "dpc-chan-v1"

let snapshot_channels t =
  let outs =
    Hashtbl.fold
      (fun dst ch acc -> if ch.next_seq > 1 || ch.o_acked > 0 then (dst, ch) :: acc else acc)
      t.out_chans []
    |> List.sort compare
  in
  let ins =
    Hashtbl.fold (fun src ch acc -> if ch.expected > 1 then (src, ch.expected) :: acc else acc)
      t.in_chans []
    |> List.sort compare
  in
  Serialize.with_scratch (fun w ->
      Serialize.write_string w chan_magic;
      Serialize.write_list w
        (fun (dst, ch) ->
          Serialize.write_varint w dst;
          Serialize.write_varint w ch.next_seq;
          Serialize.write_varint w ch.o_acked)
        outs;
      Serialize.write_list w
        (fun (src, expected) ->
          Serialize.write_varint w src;
          Serialize.write_varint w expected)
        ins)

let restore_channels t blob =
  let r = Serialize.reader blob in
  let magic = Serialize.read_string r in
  if magic <> chan_magic then
    raise (Serialize.Corrupt (Printf.sprintf "channel snapshot: bad magic %S" magic));
  let outs =
    Serialize.read_list r (fun () ->
        let dst = Serialize.read_varint r in
        let next_seq = Serialize.read_varint r in
        let acked = Serialize.read_varint r in
        (dst, next_seq, acked))
  in
  let ins =
    Serialize.read_list r (fun () ->
        let src = Serialize.read_varint r in
        let expected = Serialize.read_varint r in
        (src, expected))
  in
  List.iter
    (fun (dst, next_seq, acked) ->
      set_next_seq t ~dst next_seq;
      set_acked t ~dst acked)
    outs;
  List.iter (fun (src, expected) -> set_expected t ~src expected) ins

let unacked t = Hashtbl.fold (fun _ ch acc -> acc + Hashtbl.length ch.unacked) t.out_chans 0

let stop t = t.stopped <- true

let close t =
  stop t;
  List.iter (fun c -> if not c.closed then (c.closed <- true; try Unix.close c.fd with _ -> ())) t.conns;
  t.conns <- [];
  Hashtbl.reset t.out_conns;
  (try Unix.close t.listen_fd with _ -> ());
  match t.listen_path with
  | Some p -> ( try Unix.unlink p with _ -> ())
  | None -> ()

let stats t =
  {
    data_sent = t.m_data_sent;
    data_received = t.m_data_received;
    retransmits = t.m_retransmits;
    dup_dropped = t.m_dup_dropped;
    held = t.m_held;
    acks_sent = t.m_acks_sent;
    reconnects = t.m_reconnects;
    chaos_dropped = t.m_chaos_dropped;
    chaos_duplicated = t.m_chaos_duplicated;
    chaos_delayed = t.m_chaos_delayed;
    blocked_drops = t.m_blocked_drops;
  }

let transport t : Transport.t =
  (module struct
    let name = "socket"
    let nodes = t.nodes
    let shards = 1
    let shard_of _ = 0
    let now () = now t

    let schedule ~delay fn =
      if delay < 0. then invalid_arg "Socket.schedule: negative delay";
      schedule_at t (now () +. delay) fn

    let schedule_on ~node:_ ~delay fn = schedule ~delay fn

    let send ~src:_ ~dst ~bytes fn =
      if dst <> t.local then
        failwith
          (Printf.sprintf
             "Socket transport hosts node %d only: dst %d needs the runtime remote hook \
              (closures cannot cross a process boundary)"
             t.local dst);
      t.msgs_total <- t.msgs_total + 1;
      t.bytes_total <- t.bytes_total + bytes;
      schedule_at t (now ()) fn

    let broadcast ~src:_ ~bytes fn =
      for dst = 0 to t.nodes - 1 do
        if dst = t.local then begin
          t.msgs_total <- t.msgs_total + 1;
          t.bytes_total <- t.bytes_total + bytes;
          schedule_at t (now ()) (fun () -> fn dst)
        end
        else
          failwith
            (Printf.sprintf
               "Socket transport hosts node %d only: broadcast to %d needs the runtime remote hook"
               t.local dst)
      done

    let run ?until () = run_loop t ?until ()
    let total_bytes () = t.bytes_total
    let messages () = t.msgs_total
  end : Transport.S)
