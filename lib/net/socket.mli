(** Real-process transport: one {!Transport.S} backend per OS process,
    speaking {!Wire} frames over Unix-domain or TCP sockets.

    Where every other backend simulates the cluster inside one process,
    a socket transport hosts exactly ONE node ([local]) and reaches the
    other [nodes - 1] over the network: each process listens on its own
    address ([addr_of local]) and dials its peers lazily, reconnecting
    with backoff whenever a peer dies or is not up yet. The clock is the
    wall clock, timers run on a heap inside a [select] loop, and
    deliveries still go through the event queue — run-to-completion of
    the current handler holds exactly as it does on the simulator.

    {b Reliable's wire discipline, on the wire.} TCP gives FIFO bytes on
    one connection, but a [kill -9] kills connections with the process —
    so exactly-once effects across crashes need the same machinery
    {!Reliable} implements in-process: every directed channel numbers
    its data frames, the receiver keeps a contiguous watermark (plus a
    hold-back window for reordered arrivals) and acks cumulatively, and
    the sender retransmits unacked frames on a timer and on every
    reconnect. The receiver persists its watermark advance BEFORE
    running the delivery callback (see {!set_persist}) and acks only
    after {!set_sync} has flushed the effects — an ack is a durable
    promise, as {!Reliable}'s crash model demands.

    {b The durable outbox.} The transport does not persist anything
    itself; it reports through {!set_persist} and expects the host to
    journal [Sent] records before the first transmission (the
    persist-before-send discipline, implemented by
    [Dpc_core.Durable.Outbox]) and to re-offer the unacked tail with
    {!requeue} after a restart. Closures never cross the wire: senders
    hand over opaque payload strings ({!send_payload}), receivers get
    them back through {!set_deliver} — the runtime's remote hook
    ([Dpc_engine.Runtime.set_remote]) serializes events as journal
    entries on one side and replays them on the other.

    Addresses are ["unix:/path/to.sock"] or ["tcp:host:port"]. *)

type config = {
  retransmit_every : float;  (** unacked-frame rescan period, seconds *)
  dial_retry : float;  (** delay before re-dialing a failed peer connection *)
  hold_cap : int;  (** held out-of-order frames per channel before new ones are dropped *)
}

val default_config : config
(** 250 ms retransmit scan, 200 ms dial retry, 1024 held frames. *)

(** What the host must make durable, reported synchronously and in
    order. [Sent] fires BEFORE the frame's first transmission; [Expected]
    fires before the delivery callback it covers. *)
type persist_event =
  | Sent of { dst : int; seq : int; payload : string }
  | Acked of { dst : int; seq : int }  (** cumulative: every seq [<=] is acked *)
  | Expected of { src : int; seq : int }  (** receive watermark advanced to [seq] *)

type stats = {
  data_sent : int;
  data_received : int;
  retransmits : int;
  dup_dropped : int;
  held : int;
  acks_sent : int;
  reconnects : int;
  chaos_dropped : int;  (** data frames eaten by injected chaos before the wire *)
  chaos_duplicated : int;  (** data frames enqueued twice by injected chaos *)
  chaos_delayed : int;  (** data frames held back by injected chaos *)
  blocked_drops : int;  (** inbound frames eaten because their peer is blocked *)
}

type t

val create :
  nodes:int -> local:int -> addr_of:(int -> string) -> ?config:config -> unit -> t
(** Bind [addr_of local] and return a transport addressing the whole
    [nodes]-wide cluster with only [local] hosted here. Peers are dialed
    on demand. @raise Invalid_argument on a bad node count, an
    out-of-range [local], or a malformed address;
    @raise Unix.Unix_error if the listen address cannot be bound. *)

val transport : t -> Transport.t
(** The {!Transport.S} view: [shards = 1], [shard_of _ = 0], [now] is
    wall-clock seconds since {!create}, [send]/[broadcast] accept only
    the local node as destination (remote destinations need
    {!send_payload} — closures cannot cross a process boundary) and
    [run ?until] pumps the socket loop until {!stop} or the [until]
    horizon instead of quiescence, which no single process can decide. *)

val send_payload : t -> dst:int -> string -> unit
(** Queue a payload on channel [(local, dst)]: assigns the next sequence
    number, reports [Sent] through the persist hook, then transmits (or
    leaves the frame in the unacked outbox until the peer is dialable).
    Retransmission and dedup make the delivery exactly-once at the
    peer's {!set_deliver}. @raise Invalid_argument if [dst] is the local
    node or out of range. *)

val set_deliver : t -> (src:int -> payload:string -> unit) -> unit
(** The data-plane sink: runs exactly once per {!send_payload} at the
    sending process, in channel order, after the watermark advance was
    reported through {!set_persist}. *)

val set_control : t -> (payload:string -> reply:(string -> unit) -> unit) -> unit
(** The control-plane handler: a [Ctrl] frame from a control client
    (one that said hello as {!Wire.control_id}) invokes it; [reply]
    queues a [Ctrl] response on the same connection. *)

val set_persist : t -> (persist_event -> unit) -> unit
val set_sync : t -> (unit -> unit) -> unit
(** Called once per delivery batch, after the delivery callbacks and
    before their acks are transmitted — the host flushes its write-ahead
    log here so no ack ever outruns the durability of its effects. *)

(** {2 Injectable link faults}

    The process-level analogue of {!Transport.partitionable} and
    {!Transport.faulty}: partitions are injected by blocking a peer
    (dials refused, established connections dropped, inbound frames
    eaten — a full blackhole of that peer at this endpoint), chaos by a
    hashed per-channel fault schedule over outgoing data frames. Neither
    touches the channel state, so the retransmit/dedup discipline must
    deliver exactly-once effects through both — which is what the
    process-level chaos and partition oracles assert. *)

val set_peer_blocked : t -> peer:int -> bool -> unit
(** Block or unblock one peer (idempotent). Blocking closes the dialed
    and inbound connections to the peer and refuses new ones; frames
    buffered on them die with the connection. Unblocking redials eagerly
    when data or acks are owed — the reconnect handshake re-offers the
    unacked tail. @raise Invalid_argument if [peer] is the local node or
    out of range. *)

val peer_blocked : t -> peer:int -> bool

val set_chaos : t -> config:Transport.fault_config -> seed:int -> unit
(** Corrupt outgoing data frames with {!Transport.hashed_decide} at the
    given rates: drops never reach the wire (the retransmit scan
    re-offers), duplicates are enqueued twice, delays re-offer through a
    timer. Hello, ack and control frames are exempt — the control plane
    stays reliable so an oracle can still drive a chaotic cluster. *)

val clear_chaos : t -> unit

(** {2 Restart support} *)

val set_next_seq : t -> dst:int -> int -> unit
(** Monotonically raise the sender sequence of channel [(local, dst)]. *)

val sender_next_seq : t -> dst:int -> int
(** The sequence the next {!send_payload} toward [dst] would take. After
    {!restore_channels} this is the checkpoint cut's cursor — the
    position replayed remote sends are reconciled against. *)

val set_expected : t -> src:int -> int -> unit
(** Monotonically raise the receive watermark of channel [(src, local)]. *)

val requeue : t -> dst:int -> seq:int -> string -> unit
(** Reload one unacked send from the durable outbox: the frame rejoins
    the retransmit set without a fresh [Sent] record (it already has
    one). Sends below the restored ack watermark are dropped. *)

val snapshot_channels : t -> string
(** Serialize every channel's sequence state (next_seq, acked, expected)
    for inclusion in a durable checkpoint; deterministic, zero-state
    channels skipped. *)

val restore_channels : t -> string -> unit
(** Monotonically apply a {!snapshot_channels} blob.
    @raise Dpc_util.Serialize.Corrupt on a malformed blob. *)

val unacked : t -> int
(** Outstanding data frames across all channels (the outbox depth). *)

val stop : t -> unit
(** Make the current (or next) [run] return; idempotent. *)

val close : t -> unit
(** Close every socket and unlink the Unix listen path. The transport
    must not be used afterwards. *)

val stats : t -> stats
