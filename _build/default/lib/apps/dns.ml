open Dpc_ndlog

let source =
  {|// Recursive DNS resolution (paper Figure 19).
r1 request(@RT, URL, HST, RQID) :- url(@HST, URL, RQID), rootServer(@HST, RT).
r2 request(@SV, URL, HST, RQID) :- request(@X, URL, HST, RQID),
                                   nameServer(@X, DM, SV),
                                   f_isSubDomain(DM, URL) == true.
r3 dnsResult(@X, URL, IPADDR, HST, RQID) :- request(@X, URL, HST, RQID),
                                            addressRecord(@X, URL, IPADDR).
r4 reply(@HST, URL, IPADDR, RQID) :- dnsResult(@X, URL, IPADDR, HST, RQID).
|}

let delp () =
  match Parser.parse_program ~name:"dns-resolution" source with
  | Error e -> failwith ("Dns.delp: parse error: " ^ e)
  | Ok p -> begin
      match Delp.validate p with
      | Ok d -> d
      | Error e -> failwith ("Dns.delp: " ^ Delp.error_to_string e)
    end

let is_sub_domain dm url =
  String.equal dm ""
  || String.equal dm url
  ||
  let ld = String.length dm and lu = String.length url in
  lu > ld
  && String.equal (String.sub url (lu - ld) ld) dm
  && url.[lu - ld - 1] = '.'

let env =
  Dpc_engine.Env.register Dpc_engine.Env.empty "f_isSubDomain" (function
    | [ Value.Str dm; Value.Str u ] -> Value.Bool (is_sub_domain dm u)
    | args ->
        raise
          (Dpc_engine.Eval.Eval_error
             (Printf.sprintf "f_isSubDomain: expected two strings, got %d arguments"
                (List.length args))))

let url ~host ~url ~rqid = Tuple.make "url" [ Value.Addr host; Value.Str url; Value.Int rqid ]
let root_server ~host ~root = Tuple.make "rootServer" [ Value.Addr host; Value.Addr root ]

let name_server ~at ~domain ~server =
  Tuple.make "nameServer" [ Value.Addr at; Value.Str domain; Value.Addr server ]

let address_record ~at ~url ~ip =
  Tuple.make "addressRecord" [ Value.Addr at; Value.Str url; Value.Str ip ]

let reply ~host ~url ~ip ~rqid =
  Tuple.make "reply" [ Value.Addr host; Value.Str url; Value.Str ip; Value.Int rqid ]
