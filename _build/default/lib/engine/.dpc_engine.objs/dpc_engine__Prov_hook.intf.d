lib/engine/prov_hook.mli: Dpc_ndlog Dpc_util
