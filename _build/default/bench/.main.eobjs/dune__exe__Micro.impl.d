bench/micro.ml: Analyze Bechamel Benchmark Dpc_analysis Dpc_apps Dpc_core Dpc_engine Dpc_ndlog Dpc_net Dpc_util Hashtbl Instance List Measure Printf Staged String Test Time Toolkit
