lib/util/sha1.ml: Array Buffer Bytes Char Format Hashtbl Printf String
