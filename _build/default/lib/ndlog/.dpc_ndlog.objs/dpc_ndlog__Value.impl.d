lib/ndlog/value.ml: Dpc_util Format Hashtbl Printf Stdlib String
