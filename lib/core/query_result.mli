(** Result of a distributed provenance query, and pagination over the
    canonical proof-tree ordering. *)

type t = {
  trees : Prov_tree.t list;
      (** all reconstructed derivations of the queried tuple, deduplicated *)
  latency : float;  (** seconds, under the query's {!Query_cost} model *)
  entries : int;  (** provenance rows fetched (cache hits count one) *)
  bytes : int;  (** bytes processed or shipped *)
  rederives : int;  (** rule re-executions during bottom-up replay *)
  hop_s : float;  (** seconds of [latency] attributable to network hops *)
  downs : int;
      (** down-node encounters that burned the bounded retry budget *)
  complete : bool;
      (** [false] when a crashed node made part of the provenance
          unreachable: the branches that needed it were abandoned after
          the bounded retry budget ({!Query_cost.t.down_timeout} ×
          retries), so [trees] may be a subset of the truth. [true] on
          every fully-answered query, including empty ones. *)
}

val empty : t

val dedup_trees : Prov_tree.t list -> Prov_tree.t list
(** Sort into the canonical order ({!Prov_tree.compare}) and drop
    duplicates. Every store returns trees through this, which is what
    makes page boundaries deterministic. *)

(** {2 Pagination}

    Huge results stream in bounded chunks instead of shipping the whole
    forest: pages walk the canonical order, and the cursor names the
    last tree served by content digest — a deterministic traversal
    position, so a cursor issued before a crash still means the same
    position when re-issued against the recovered (byte-identical)
    store. *)

type page = {
  page_trees : Prov_tree.t list;  (** at most [limit] trees, in order *)
  next_cursor : string option;  (** [None] on the last page *)
  page_total : int;  (** total trees across all pages *)
}

val cursor_of_tree : Prov_tree.t -> string
(** ["dpc-cursor-v1:<hex sha1 of the tree's canonical rendering>"]. *)

val paginate : ?cursor:string -> limit:int -> Prov_tree.t list -> page
(** The next [limit] trees after [cursor] (from the top when absent),
    in canonical order. Start-after semantics: the tree the cursor
    names is not repeated.
    @raise Invalid_argument if [limit < 1], the cursor is malformed, or
    it names no tree in the (deduplicated) input — a stale cursor from a
    different result set must surface, not silently restart. *)

val top_k : int -> Prov_tree.t list -> Prov_tree.t list
(** First [k] trees of the canonical order — a prefix of what pagination
    would stream. @raise Invalid_argument on negative [k]. *)
