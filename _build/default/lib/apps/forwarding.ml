open Dpc_ndlog

let source =
  {|// Packet forwarding (paper Figure 1).
r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
|}

let delp () =
  match Parser.parse_program ~name:"packet-forwarding" source with
  | Error e -> failwith ("Forwarding.delp: parse error: " ^ e)
  | Ok p -> begin
      match Delp.validate p with
      | Ok d -> d
      | Error e -> failwith ("Forwarding.delp: " ^ Delp.error_to_string e)
    end

let env = Dpc_engine.Env.empty

let packet ~src ~dst ~payload =
  Tuple.make "packet" [ Value.Addr src; Value.Addr src; Value.Addr dst; Value.Str payload ]

let route ~at ~dst ~next = Tuple.make "route" [ Value.Addr at; Value.Addr dst; Value.Addr next ]

let recv ~at ~src ~dst ~payload =
  Tuple.make "recv" [ Value.Addr at; Value.Addr src; Value.Addr dst; Value.Str payload ]

let routes_for_pair routing ~src ~dst =
  match Dpc_net.Routing.path routing ~src ~dst with
  | None -> failwith (Printf.sprintf "Forwarding.routes_for_pair: %d unreachable from %d" dst src)
  | Some path ->
      let rec go = function
        | at :: (next :: _ as rest) -> route ~at ~dst ~next :: go rest
        | [ _ ] | [] -> []
      in
      go path

let routes_for_pairs routing pairs =
  List.concat_map (fun (src, dst) -> routes_for_pair routing ~src ~dst) pairs
  |> List.sort_uniq Tuple.compare
