.PHONY: all build test bench chaos crash partitions scaling queries procs soak doc bench-gate ci clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

chaos:
	DPC_CHAOS_FULL=1 dune exec test/test_chaos.exe

# Crash/recovery suites only: the crash oracle sweep (quick by default,
# full width with DPC_CHAOS_FULL=1 in the environment) plus the
# durable-recovery, delta-checkpoint drift, crash-schedule hygiene, and
# degraded-query groups.
crash:
	dune exec test/test_chaos.exe -- test 'crash oracle'
	dune exec test/test_persistence.exe -- test 'mid-run checkpoint'
	dune exec test/test_persistence.exe -- test 'delta checkpoints'
	dune exec test/test_persistence.exe -- test 'crash schedule'
	dune exec test/test_robustness.exe -- test 'degraded queries'

# Partition-fault suites: the partition oracle at full width (15 seeded
# instances x 4 schemes x 4 plan families, digest-checked against a
# perfect network), the partitionable/backoff/suspension unit group, the
# degraded-query partition test, and the partitions bench figure (heal
# latency + retransmit storm, jitter on/off).
partitions:
	DPC_CHAOS_FULL=1 dune exec test/test_chaos.exe -- test 'partition oracle'
	dune exec test/test_net.exe -- test 'partition faults'
	dune exec test/test_robustness.exe -- test 'degraded queries'
	dune exec bench/main.exe -- --fig partitions --tiny

# Multicore determinism sweep: parallel-vs-sequential digest equality at
# 1/2/4 domains (clean, hashed-fault, and crash schedules, all four
# schemes), the shard-partition and concurrent-metrics suites, and the
# domain-scaling bench figure (throughput table + digest shape check).
scaling:
	dune exec test/test_scaling.exe
	dune exec bench/main.exe -- --fig scaling --tiny

# Query serving tier: the full-width test_query suite (cache semantics,
# §5.5 invalidation regression, pagination properties, cost drift, and
# the Zipfian storm sweep across all four schemes — the quick run that
# `dune runtest` executes storms Advanced only) plus the queries bench
# figure with its own shape checks (hit rate >= 50%, warm p99 faster
# than cache-off, degraded-but-bounded crash-window storm).
queries:
	DPC_QUERIES_FULL=1 dune exec test/test_query.exe
	dune exec bench/main.exe -- --fig queries --tiny

# Real processes: one dpcd daemon per node, Unix-socket transport, WAL +
# checkpoints + durable outbox on disk. The launcher kill -9s node 1
# mid-run, recovers it from its data directory, and requires every
# node's digests to equal the in-process simulator's — all four schemes.
# mid-partition crash of node 1 (Block/Unblock over the control plane).
# `make procs` also reruns the sweep with wire chaos on.
procs:
	dune exec bin/dpcd.exe -- cluster
	dune exec bin/dpcd.exe -- cluster --chaos

# Long-running cluster soak: sustained rounds of traffic through the
# three daemons with a periodic durable-outbox compaction; fails if any
# ledger outgrows its round-independent ceiling or digests diverge.
soak:
	dune exec bin/dpcd.exe -- cluster --soak

# API docs (requires odoc; `make ci` skips this step where it is absent).
doc:
	dune build @doc

# Throughput regression gate against the checked-in baseline
# (BENCH_PR8.json): fig8/fig9 events/s may not drop more than 15%, and
# the queries figure's modeled warm-cache p99 may not regress.
bench-gate:
	sh scripts/bench_gate.sh

ci:
	sh scripts/ci.sh

clean:
	dune clean
