(* Integration and correctness tests for dpc_core: the three maintenance
   schemes on the paper's running example (Fig 2/3/6), the Basic
   optimization's re-derivation (§4), equivalence-based compression (§5.3),
   inter-class compression (§5.4), slow-changing updates (§5.5), and the
   theorem-level properties (1, 3, 5). *)

open Dpc_ndlog
open Dpc_core

let check = Alcotest.check

(* --------------------------------------------------------------- *)
(* Harness: run packet forwarding on the Fig 2 topology (n1 -> n2 -> n3,
   plus a spare node n4 used by the update tests). Node ids: n1=0, n2=1,
   n3=2, n4=3. *)

type world = {
  runtime : Dpc_engine.Runtime.t;
  backend : Backend.t;
  routing : Dpc_net.Routing.t;
}

let line_link = { Dpc_net.Topology.latency = 0.002; bandwidth = 50e6 /. 8.0 }

let fig2_topology () =
  let topo = Dpc_net.Topology.create ~n:4 in
  Dpc_net.Topology.add_link topo 0 1 line_link;
  Dpc_net.Topology.add_link topo 1 2 line_link;
  Dpc_net.Topology.add_link topo 0 3 line_link;
  Dpc_net.Topology.add_link topo 3 2 line_link;
  topo

let make_world ?(routes = true) scheme =
  let topo = fig2_topology () in
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Forwarding.delp () in
  let backend = Backend.make scheme ~delp ~env:Dpc_apps.Forwarding.env ~nodes:4 in
  let runtime =
    Dpc_engine.Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env:Dpc_apps.Forwarding.env
      ~hook:(Backend.hook backend) ()
  in
  if routes then
    (* The paper's Fig 2 routes: n1 forwards to n3 via n2 (even though a
       shorter path via n4 exists — the "misconfiguration" of §2.2). *)
    Dpc_engine.Runtime.load_slow runtime
      [
        Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1;
        Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2;
      ];
  { runtime; backend; routing }

let send w ~payload =
  Dpc_engine.Runtime.inject w.runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload);
  Dpc_engine.Runtime.run w.runtime

let query ?evid w output =
  Backend.query w.backend ~cost:Query_cost.free ~routing:w.routing ?evid output

let expected_recv payload = Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload

(* The provenance tree of Fig 3 for a given payload. *)
let fig3_tree payload =
  {
    Prov_tree.rule = "r2";
    output = expected_recv payload;
    slow = [];
    trigger =
      Derived
        {
          Prov_tree.rule = "r1";
          output = Tuple.make "packet" [ Value.Addr 2; Value.Addr 0; Value.Addr 2; Value.Str payload ];
          slow = [ Dpc_apps.Forwarding.route ~at:1 ~dst:2 ~next:2 ];
          trigger =
            Derived
              {
                Prov_tree.rule = "r1";
                output =
                  Tuple.make "packet" [ Value.Addr 1; Value.Addr 0; Value.Addr 2; Value.Str payload ];
                slow = [ Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1 ];
                trigger = Event (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload);
              };
        };
  }

let tree_testable = Alcotest.testable Prov_tree.pp Prov_tree.equal

let all_schemes =
  [ Backend.S_exspan; Backend.S_basic; Backend.S_advanced; Backend.S_advanced_interclass ]

let for_all_schemes f () =
  List.iter (fun s -> f (Backend.scheme_name s) s) all_schemes

(* --------------------------------------------------------------- *)
(* End-to-end execution *)

let test_forwarding_delivers name scheme =
  let w = make_world scheme in
  send w ~payload:"data";
  let outputs = Dpc_engine.Runtime.outputs w.runtime in
  check Alcotest.int (name ^ ": one output") 1 (List.length outputs);
  let out, _ = List.hd outputs in
  check Alcotest.bool (name ^ ": recv at n3") true (Tuple.equal out (expected_recv "data"));
  let stats = Dpc_engine.Runtime.stats w.runtime in
  check Alcotest.int (name ^ ": three rule executions") 3 stats.fired

let test_query_reconstructs_fig3 name scheme =
  let w = make_world scheme in
  send w ~payload:"data";
  let result = query w (expected_recv "data") in
  check Alcotest.int (name ^ ": one tree") 1 (List.length result.trees);
  check tree_testable (name ^ ": Fig 3 tree") (fig3_tree "data") (List.hd result.trees)

let test_query_unknown_tuple name scheme =
  let w = make_world scheme in
  send w ~payload:"data";
  let result = query w (expected_recv "never-sent") in
  check Alcotest.int (name ^ ": no trees") 0 (List.length result.trees)

(* --------------------------------------------------------------- *)
(* Storage comparisons *)

let prov_bytes w = Rows.provenance_bytes (Backend.total_storage w.backend)

let run_many scheme n =
  let w = make_world scheme in
  for i = 1 to n do
    send w ~payload:(Printf.sprintf "payload-%d" i)
  done;
  w

let test_basic_smaller_than_exspan () =
  let ex = run_many Backend.S_exspan 50 in
  let ba = run_many Backend.S_basic 50 in
  check Alcotest.bool "basic < exspan" true (prov_bytes ba < prov_bytes ex)

let test_advanced_much_smaller () =
  let ex = run_many Backend.S_exspan 50 in
  let ad = run_many Backend.S_advanced 50 in
  (* One shared chain + 50 prov deltas vs 50 full trees. *)
  check Alcotest.bool "advanced < exspan / 3" true (prov_bytes ad * 3 < prov_bytes ex)

let test_advanced_shares_chain () =
  let w = run_many Backend.S_advanced 10 in
  let storage = Backend.total_storage w.backend in
  (* 3 shared ruleExec rows for the single equivalence class; one prov
     delta per packet. *)
  check Alcotest.int "ruleExec rows" 3 storage.rule_exec_rows;
  check Alcotest.int "prov rows" 10 storage.prov_rows

let test_exspan_grows_linearly () =
  let w1 = run_many Backend.S_exspan 10 in
  let w2 = run_many Backend.S_exspan 20 in
  let s1 = Backend.total_storage w1.backend and s2 = Backend.total_storage w2.backend in
  check Alcotest.int "ruleExec rows double" (2 * s1.rule_exec_rows) s2.rule_exec_rows

(* --------------------------------------------------------------- *)
(* Advanced: per-packet querying through the shared chain *)

let test_advanced_queries_every_packet () =
  let w = run_many Backend.S_advanced 5 in
  for i = 1 to 5 do
    let payload = Printf.sprintf "payload-%d" i in
    let result = query w (expected_recv payload) in
    check Alcotest.int (payload ^ ": one tree") 1 (List.length result.trees);
    check tree_testable payload (fig3_tree payload) (List.hd result.trees)
  done

let test_advanced_evid_filter () =
  let w = run_many Backend.S_advanced 3 in
  let ev = Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"payload-2" in
  let evid = Dpc_util.Sha1.digest_string (Tuple.canonical ev) in
  let result = query ~evid w (expected_recv "payload-2") in
  check Alcotest.int "one tree" 1 (List.length result.trees);
  let wrong = Dpc_util.Sha1.digest_string "nonsense" in
  let result = query ~evid:wrong w (expected_recv "payload-2") in
  check Alcotest.int "no tree under wrong evid" 0 (List.length result.trees)

(* --------------------------------------------------------------- *)
(* §5.4 inter-class sharing: crossing traffic shares suffix rows *)

let test_interclass_shares_suffix () =
  (* Class A: 0 -> 2 via 1. Class B: 1 -> 2 (suffix of A's path). *)
  let run scheme =
    let w = make_world scheme in
    Dpc_engine.Runtime.inject w.runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"a");
    Dpc_engine.Runtime.run w.runtime;
    Dpc_engine.Runtime.inject w.runtime
      (Tuple.make "packet" [ Value.Addr 1; Value.Addr 1; Value.Addr 2; Value.Str "b" ]);
    Dpc_engine.Runtime.run w.runtime;
    w
  in
  let plain = run Backend.S_advanced in
  let inter = run Backend.S_advanced_interclass in
  (* Plain: class A's chain (r1@0, r1@1, r2@2) plus class B's (r1@1', r2@2')
     = 5 rows — B's rows differ because the rid hashes the chain.
     Inter-class: node rows r1@0, r1@1, r2@2 are shared (3 node rows) and
     the distinct successors live in cheap link rows. *)
  let plain_rows = (Backend.total_storage plain.backend).rule_exec_rows in
  let inter_storage = Backend.total_storage inter.backend in
  check Alcotest.int "plain stores separate suffix rows" 5 plain_rows;
  check Alcotest.int "interclass shares node rows" (3 + 4) inter_storage.rule_exec_rows;
  (* 3 shared node rows + 4 distinct link rows (r2@2 has two different
     successors, r1@1 has two: toward r1@0 and leaf). *)
  check Alcotest.bool "interclass stores fewer bytes" true
    (Rows.provenance_bytes inter_storage < Rows.provenance_bytes (Backend.total_storage plain.backend));
  (* Both classes still query correctly. *)
  List.iter
    (fun w ->
      let r1 = query w (expected_recv "a") in
      check Alcotest.int "class A tree" 1 (List.length r1.trees);
      let out_b = Dpc_apps.Forwarding.recv ~at:2 ~src:1 ~dst:2 ~payload:"b" in
      let r2 = query w out_b in
      check Alcotest.int "class B tree" 1 (List.length r2.trees))
    [ plain; inter ]

(* --------------------------------------------------------------- *)
(* §5.5 slow-changing updates *)

let test_route_update_rematerializes () =
  let w = make_world Backend.S_advanced in
  send w ~payload:"before";
  (* Redirect: n1 now forwards to n3 via n4 (Fig 7). *)
  ignore (Dpc_engine.Runtime.delete_slow_runtime w.runtime (Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1));
  Dpc_engine.Runtime.insert_slow_runtime w.runtime (Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:3);
  Dpc_engine.Runtime.insert_slow_runtime w.runtime (Dpc_apps.Forwarding.route ~at:3 ~dst:2 ~next:2);
  Dpc_engine.Runtime.run w.runtime;
  send w ~payload:"after";
  (* The new packet takes n1 -> n4 -> n3 and, because the sig broadcast
     cleared htequi, its chain is re-materialized. *)
  let result = query w (expected_recv "after") in
  check Alcotest.int "one tree for the new path" 1 (List.length result.trees);
  let tree = List.hd result.trees in
  check (Alcotest.list Alcotest.string) "rules" [ "r2"; "r1"; "r1" ]
    (Prov_tree.rules_root_to_leaf tree);
  let slow_locs =
    List.filter_map
      (fun t -> if String.equal (Tuple.rel t) "route" then Some (Tuple.loc t) else None)
      (Prov_tree.tuples tree)
    |> List.sort compare
  in
  check (Alcotest.list Alcotest.int) "route tuples on the new path" [ 0; 3 ] slow_locs;
  (* The old tree is still queryable (provenance is monotone). *)
  let old_result = query w (expected_recv "before") in
  check Alcotest.int "old tree intact" 1 (List.length old_result.trees);
  check tree_testable "old tree is the Fig 3 tree" (fig3_tree "before")
    (List.hd old_result.trees)

let test_delete_alone_invalidates_equivalence () =
  (* Regression for the §5.5 fix: a deletion with no accompanying insert
     must broadcast [sig] on its own. Here the class is materialized with
     two derivations (both routes at n1), then one route is deleted; if the
     delete were silent, the next packet would reuse the stale class and be
     served a tree through the deleted route. *)
  let w = make_world Backend.S_advanced in
  send w ~payload:"before";
  (* Add the alternate path n1 -> n4 -> n3 (both routes now live at n1). *)
  Dpc_engine.Runtime.insert_slow_runtime w.runtime (Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:3);
  Dpc_engine.Runtime.insert_slow_runtime w.runtime (Dpc_apps.Forwarding.route ~at:3 ~dst:2 ~next:2);
  Dpc_engine.Runtime.run w.runtime;
  send w ~payload:"mid";
  check Alcotest.int "both paths materialized" 2
    (List.length (query w (expected_recv "mid")).trees);
  (* Delete the original route. Nothing else updates afterwards. *)
  ignore
    (Dpc_engine.Runtime.delete_slow_runtime w.runtime
       (Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1));
  Dpc_engine.Runtime.run w.runtime;
  send w ~payload:"after";
  let result = query w (expected_recv "after") in
  check Alcotest.int "only the surviving path" 1 (List.length result.trees);
  List.iter
    (fun tree ->
      List.iter
        (fun t ->
          if Tuple.equal t (Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1) then
            Alcotest.failf "stale tree cites the deleted route: %s" (Prov_tree.to_string tree))
        (Prov_tree.tuples tree))
    result.trees

let test_deletion_keeps_provenance () =
  let w = make_world Backend.S_advanced in
  send w ~payload:"data";
  ignore (Dpc_engine.Runtime.delete_slow_runtime w.runtime (Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:1));
  let result = query w (expected_recv "data") in
  check Alcotest.int "tree survives deletion" 1 (List.length result.trees);
  check tree_testable "identical tree" (fig3_tree "data") (List.hd result.trees)

(* --------------------------------------------------------------- *)
(* Theorem 1: events equal on the equivalence keys generate equivalent
   trees. *)

let test_theorem1_forwarding () =
  let keys = Dpc_analysis.Equi_keys.compute (Dpc_apps.Forwarding.delp ()) in
  check (Alcotest.list Alcotest.int) "forwarding keys" [ 0; 2 ]
    (Dpc_analysis.Equi_keys.keys keys);
  let w = make_world Backend.S_exspan in
  send w ~payload:"data";
  send w ~payload:"url";
  let t1 = List.hd (query w (expected_recv "data")).trees in
  let t2 = List.hd (query w (expected_recv "url")).trees in
  check Alcotest.bool "equivalent" true (Prov_tree.equivalent t1 t2);
  check Alcotest.bool "not equal" false (Prov_tree.equal t1 t2)

let prop_theorem1_random_payloads =
  QCheck.Test.make ~name:"theorem 1: same keys => equivalent trees" ~count:20
    (QCheck.pair QCheck.small_printable_string QCheck.small_printable_string)
    (fun (p1, p2) ->
      QCheck.assume (p1 <> p2);
      let w = make_world Backend.S_exspan in
      send w ~payload:p1;
      send w ~payload:p2;
      match (query w (expected_recv p1)).trees, (query w (expected_recv p2)).trees with
      | [ t1 ], [ t2 ] -> Prov_tree.equivalent t1 t2
      | _ -> false)

(* --------------------------------------------------------------- *)
(* Theorem 3 (losslessness): the trees queryable from the compressed store
   equal the trees ExSPAN maintains, for a randomized workload. *)

let random_workload rng w =
  let payloads = ref [] in
  for i = 1 to 30 do
    let payload = Printf.sprintf "p%d-%d" i (Dpc_util.Rng.int rng 5) in
    (* Duplicate payloads may repeat an identical event: content-addressed
       storage must still be correct. *)
    payloads := payload :: !payloads;
    send w ~payload
  done;
  List.sort_uniq String.compare !payloads

let test_theorem3_losslessness name scheme =
  let rng = Dpc_util.Rng.create ~seed:42 in
  let ex = make_world Backend.S_exspan in
  let payloads = random_workload rng ex in
  let rng = Dpc_util.Rng.create ~seed:42 in
  let cm = make_world scheme in
  let payloads' = random_workload rng cm in
  check (Alcotest.list Alcotest.string) (name ^ ": same workload") payloads payloads';
  List.iter
    (fun payload ->
      let out = expected_recv payload in
      let tex = (query ex out).trees and tcm = (query cm out).trees in
      check (Alcotest.list tree_testable)
        (Printf.sprintf "%s: trees for %s" name payload)
        tex tcm)
    payloads

(* --------------------------------------------------------------- *)
(* Theorem 5: QUERY returns exactly the derivations with the queried evid. *)

let test_theorem5_exact_derivations () =
  let w = make_world Backend.S_advanced in
  send w ~payload:"one";
  send w ~payload:"two";
  List.iter
    (fun payload ->
      let ev = Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload in
      let evid = Dpc_util.Sha1.digest_string (Tuple.canonical ev) in
      let result = query ~evid w (expected_recv payload) in
      check Alcotest.int (payload ^ ": exactly one derivation") 1 (List.length result.trees);
      let tree = List.hd result.trees in
      check Alcotest.bool (payload ^ ": evid matches") true
        (Dpc_util.Sha1.equal (Prov_tree.event_id tree) evid);
      check Alcotest.bool (payload ^ ": tree correct") true
        (Prov_tree.equal tree (fig3_tree payload)))
    [ "one"; "two" ]

(* --------------------------------------------------------------- *)
(* Query latency model: ExSPAN processes more entries and bytes. *)

let test_query_cost_ordering () =
  let run scheme =
    let w = run_many scheme 5 in
    Backend.query w.backend ~cost:Query_cost.emulation ~routing:w.routing
      (expected_recv "payload-3")
  in
  let ex = run Backend.S_exspan in
  let ba = run Backend.S_basic in
  let ad = run Backend.S_advanced in
  check Alcotest.bool "all found a tree" true
    (List.for_all (fun (r : Query_result.t) -> r.trees <> []) [ ex; ba; ad ]);
  check Alcotest.bool "exspan ships more bytes" true (ex.bytes > ba.bytes);
  check Alcotest.bool "exspan slower than basic" true (ex.latency > ba.latency);
  check Alcotest.bool "advanced close to basic" true
    (ad.latency < ex.latency)

(* --------------------------------------------------------------- *)
(* Prov_tree unit behaviour *)

let test_prov_tree_accessors () =
  let t = fig3_tree "data" in
  check Alcotest.int "depth" 3 (Prov_tree.depth t);
  check (Alcotest.list Alcotest.string) "rules" [ "r2"; "r1"; "r1" ]
    (Prov_tree.rules_root_to_leaf t);
  check Alcotest.bool "event_of" true
    (Tuple.equal (Prov_tree.event_of t) (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"data"));
  check Alcotest.int "tuples" 6 (List.length (Prov_tree.tuples t))

let test_prov_tree_equivalence_is_shape_sensitive () =
  let t = fig3_tree "data" in
  let shallow =
    { Prov_tree.rule = "r2"; output = expected_recv "data"; slow = [];
      trigger = Event (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"data") }
  in
  check Alcotest.bool "different depth not equivalent" false (Prov_tree.equivalent t shallow);
  let different_slow =
    match t with
    | { Prov_tree.trigger = Derived ({ trigger = Derived inner; _ } as mid); _ } ->
        { t with
          trigger =
            Derived
              { mid with
                trigger =
                  Derived { inner with slow = [ Dpc_apps.Forwarding.route ~at:0 ~dst:2 ~next:3 ] } } }
    | _ -> Alcotest.fail "unexpected tree shape"
  in
  check Alcotest.bool "different slow tuples not equivalent" false
    (Prov_tree.equivalent t different_slow)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let scheme_cases f =
  List.map
    (fun s -> Alcotest.test_case (Backend.scheme_name s) `Quick (fun () -> f (Backend.scheme_name s) s))
    all_schemes

(* Query cost model edges. *)
let test_query_cost_hop_model () =
  let w = make_world Backend.S_exspan in
  (* Emulation mode: 1 hop at 0.2 ms. *)
  check (Alcotest.float 1e-9) "hop latency override" 0.0002
    (Query_cost.hop Query_cost.emulation w.routing ~src:0 ~dst:1);
  (* Simulation mode: the topology's link latency. *)
  check (Alcotest.float 1e-9) "topology latency" 0.002
    (Query_cost.hop Query_cost.simulation w.routing ~src:0 ~dst:1);
  check (Alcotest.float 1e-9) "self hop free" 0.0
    (Query_cost.hop Query_cost.emulation w.routing ~src:1 ~dst:1)

(* Hook composition: metadata sizes add, both sides observe events. *)
let test_hook_combine () =
  let delp = Dpc_apps.Forwarding.delp () in
  let replay = Replay.create ~delp ~env:Dpc_apps.Forwarding.env ~nodes:4 in
  let backend = Backend.make Backend.S_advanced ~delp ~env:Dpc_apps.Forwarding.env ~nodes:4 in
  let combined = Replay.combine (Backend.hook backend) (Replay.hook replay) in
  let ev = Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"m" in
  let meta = combined.on_input ~node:0 ev in
  check Alcotest.bool "maintenance meta flows through" true (meta.eqkey <> None);
  check Alcotest.int "logger recorded the event" 1 (Replay.log_length replay);
  check Alcotest.int "meta bytes add" ((Backend.hook backend).meta_bytes meta)
    (combined.meta_bytes meta)

let () =
  ignore for_all_schemes;
  Alcotest.run "dpc_core"
    [
      ("delivery", scheme_cases test_forwarding_delivers);
      ("query reconstructs Fig 3", scheme_cases test_query_reconstructs_fig3);
      ("query unknown tuple", scheme_cases test_query_unknown_tuple);
      ( "storage",
        [
          Alcotest.test_case "basic < exspan" `Quick test_basic_smaller_than_exspan;
          Alcotest.test_case "advanced << exspan" `Quick test_advanced_much_smaller;
          Alcotest.test_case "advanced shares one chain" `Quick test_advanced_shares_chain;
          Alcotest.test_case "exspan linear growth" `Quick test_exspan_grows_linearly;
        ] );
      ( "advanced",
        [
          Alcotest.test_case "queries every packet" `Quick test_advanced_queries_every_packet;
          Alcotest.test_case "evid filter" `Quick test_advanced_evid_filter;
          Alcotest.test_case "interclass shares suffix" `Quick test_interclass_shares_suffix;
        ] );
      ( "updates",
        [
          Alcotest.test_case "route update rematerializes" `Quick test_route_update_rematerializes;
          Alcotest.test_case "delete alone invalidates classes" `Quick
            test_delete_alone_invalidates_equivalence;
          Alcotest.test_case "deletion keeps provenance" `Quick test_deletion_keeps_provenance;
        ] );
      ( "theorems",
        [
          Alcotest.test_case "theorem 1 (forwarding)" `Quick test_theorem1_forwarding;
          Alcotest.test_case "theorem 5 (query exactness)" `Quick test_theorem5_exact_derivations;
        ]
        @ scheme_cases (fun name scheme ->
            if scheme <> Backend.S_exspan then test_theorem3_losslessness name scheme)
        @ qsuite [ prop_theorem1_random_payloads ] );
      ( "query cost",
        [
          Alcotest.test_case "exspan slower" `Quick test_query_cost_ordering;
          Alcotest.test_case "hop model" `Quick test_query_cost_hop_model;
          Alcotest.test_case "hook combine" `Quick test_hook_combine;
        ] );
      ( "prov_tree",
        [
          Alcotest.test_case "accessors" `Quick test_prov_tree_accessors;
          Alcotest.test_case "equivalence shape-sensitive" `Quick
            test_prov_tree_equivalence_is_shape_sensitive;
        ] );
    ]
