(** Plain-text table rendering for benchmark output and example programs. *)

val render : header:string list -> rows:string list list -> string
(** Render an ASCII table with aligned columns. Rows shorter than the header
    are padded with empty cells; longer rows are truncated. *)

val print : header:string list -> rows:string list list -> unit

val human_bytes : int -> string
(** "1.2 KB", "3.4 MB", ... *)

val human_rate : float -> string
(** Bytes per second, e.g. "10.3 MB/s". *)
