lib/core/replay.mli: Dpc_engine Dpc_ndlog Dpc_net Dpc_util Query_result
