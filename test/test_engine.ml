(* Tests for dpc_engine: the node-local database, rule evaluation (joins,
   comparisons, assignments, UDFs), symbolic re-derivation, and the
   distributed runtime. *)

open Dpc_ndlog
open Dpc_engine

let check = Alcotest.check
let tuple_t = Alcotest.testable Tuple.pp Tuple.equal

(* ------------------------------------------------------------------ *)
(* Db *)

let route = Dpc_apps.Forwarding.route

let test_db_set_semantics () =
  let db = Db.create () in
  check Alcotest.bool "first insert" true (Db.insert db (route ~at:0 ~dst:2 ~next:1));
  check Alcotest.bool "duplicate insert" false (Db.insert db (route ~at:0 ~dst:2 ~next:1));
  check Alcotest.int "cardinality" 1 (Db.cardinality db "route");
  check Alcotest.bool "mem" true (Db.mem db (route ~at:0 ~dst:2 ~next:1));
  check Alcotest.bool "remove" true (Db.remove db (route ~at:0 ~dst:2 ~next:1));
  check Alcotest.bool "remove again" false (Db.remove db (route ~at:0 ~dst:2 ~next:1));
  check Alcotest.int "empty" 0 (Db.total_tuples db)

let test_db_scan_deterministic () =
  let db = Db.create () in
  ignore (Db.insert db (route ~at:0 ~dst:3 ~next:1));
  ignore (Db.insert db (route ~at:0 ~dst:2 ~next:1));
  ignore (Db.insert db (route ~at:0 ~dst:4 ~next:2));
  let scan1 = Db.scan db "route" and scan2 = Db.scan db "route" in
  check (Alcotest.list tuple_t) "stable order" scan1 scan2;
  check Alcotest.int "three tuples" 3 (List.length scan1);
  check (Alcotest.list tuple_t) "unknown relation" [] (Db.scan db "nothing")

let test_db_size_bytes_grows () =
  let db = Db.create () in
  let s0 = Db.size_bytes db in
  ignore (Db.insert db (route ~at:0 ~dst:2 ~next:1));
  let s1 = Db.size_bytes db in
  check Alcotest.bool "grows" true (s1 > s0)

let test_db_size_bytes_incremental () =
  (* The O(1) counter must equal the serialize-everything recount at every
     point of a random insert/remove interleaving (with duplicates and
     misses). debug_recount additionally makes size_bytes self-check. *)
  Db.set_debug_recount true;
  Fun.protect
    ~finally:(fun () -> Db.set_debug_recount false)
    (fun () ->
      let db = Db.create () in
      let rng = Dpc_util.Rng.create ~seed:5 in
      let tuple k = route ~at:(k mod 4) ~dst:(k mod 7) ~next:(k mod 3) in
      for step = 0 to 199 do
        let k = Dpc_util.Rng.int rng 25 in
        if Dpc_util.Rng.float rng 1.0 < 0.6 then ignore (Db.insert db (tuple k))
        else ignore (Db.remove db (tuple k));
        check Alcotest.int
          (Printf.sprintf "step %d" step)
          (Db.recount_bytes db) (Db.size_bytes db)
      done)

let test_db_lookup_indexed () =
  let db = Db.create () in
  ignore (Db.insert db (route ~at:0 ~dst:2 ~next:1));
  ignore (Db.insert db (route ~at:0 ~dst:3 ~next:1));
  ignore (Db.insert db (route ~at:1 ~dst:2 ~next:2));
  let key_02 = [ Value.Addr 0; Value.Addr 2 ] in
  (* First lookup builds the (0,1) index lazily over the existing tuples. *)
  check (Alcotest.list tuple_t) "exact bucket" [ route ~at:0 ~dst:2 ~next:1 ]
    (Db.lookup db ~rel:"route" ~positions:[ 0; 1 ] ~key:key_02);
  (* ...and the index is maintained by subsequent inserts and removes. *)
  ignore (Db.insert db (route ~at:0 ~dst:2 ~next:4));
  check Alcotest.int "sees later insert" 2
    (List.length (Db.lookup db ~rel:"route" ~positions:[ 0; 1 ] ~key:key_02));
  ignore (Db.remove db (route ~at:0 ~dst:2 ~next:1));
  check (Alcotest.list tuple_t) "sees removal" [ route ~at:0 ~dst:2 ~next:4 ]
    (Db.lookup db ~rel:"route" ~positions:[ 0; 1 ] ~key:key_02);
  check (Alcotest.list tuple_t) "absent key" []
    (Db.lookup db ~rel:"route" ~positions:[ 0; 1 ] ~key:[ Value.Addr 9; Value.Addr 9 ]);
  (* A second index on different positions coexists with the first. *)
  check Alcotest.int "single-position index" 2
    (List.length (Db.lookup db ~rel:"route" ~positions:[ 0 ] ~key:[ Value.Addr 0 ]))

(* ------------------------------------------------------------------ *)
(* Eval *)

let rule_of src =
  match Parser.parse_rule src with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse error: %s" e

let forwarding_r1 = rule_of "r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N)."
let forwarding_r2 = rule_of "r2 recv(@L, S, D, DT) :- packet(@L, S, D, DT), D == L."

let pkt ~at ~src ~dst ~payload =
  Tuple.make "packet" [ Value.Addr at; Value.Addr src; Value.Addr dst; Value.Str payload ]

let test_eval_match_atom () =
  let atom = forwarding_r1.event in
  match Eval.match_atom atom (pkt ~at:0 ~src:0 ~dst:2 ~payload:"x") [] with
  | None -> Alcotest.fail "should match"
  | Some b ->
      check Alcotest.bool "binds L" true (List.assoc "L" b = Value.Addr 0);
      check Alcotest.bool "binds D" true (List.assoc "D" b = Value.Addr 2)

let test_eval_match_atom_consistency () =
  (* r2's event packet(@L, ...) with D == L later; but matching itself must
     reject inconsistent repeated variables. *)
  let atom = rule_of "r p(@X) :- q(@A, B, B)." in
  let ok = Tuple.make "q" [ Value.Addr 0; Value.Int 1; Value.Int 1 ] in
  let bad = Tuple.make "q" [ Value.Addr 0; Value.Int 1; Value.Int 2 ] in
  check Alcotest.bool "consistent repeat" true (Eval.match_atom atom.event ok [] <> None);
  check Alcotest.bool "inconsistent repeat" false (Eval.match_atom atom.event bad [] <> None)

let test_eval_fire_join () =
  let db = Db.create () in
  ignore (Db.insert db (route ~at:0 ~dst:2 ~next:1));
  ignore (Db.insert db (route ~at:0 ~dst:3 ~next:1));
  let results =
    Eval.fire ~env:Env.empty ~db ~rule:forwarding_r1 ~event:(pkt ~at:0 ~src:0 ~dst:2 ~payload:"x")
  in
  check Alcotest.int "one result" 1 (List.length results);
  let head, slow = List.hd results in
  check tuple_t "forwarded packet" (pkt ~at:1 ~src:0 ~dst:2 ~payload:"x") head;
  check (Alcotest.list tuple_t) "used route" [ route ~at:0 ~dst:2 ~next:1 ] slow

let test_eval_fire_multiple_matches () =
  let db = Db.create () in
  ignore (Db.insert db (route ~at:0 ~dst:2 ~next:1));
  ignore (Db.insert db (route ~at:0 ~dst:2 ~next:3));
  let results =
    Eval.fire ~env:Env.empty ~db ~rule:forwarding_r1 ~event:(pkt ~at:0 ~src:0 ~dst:2 ~payload:"x")
  in
  check Alcotest.int "two derivations" 2 (List.length results)

let test_eval_fire_comparison () =
  let db = Db.create () in
  let at_dst =
    Eval.fire ~env:Env.empty ~db ~rule:forwarding_r2 ~event:(pkt ~at:2 ~src:0 ~dst:2 ~payload:"x")
  in
  check Alcotest.int "fires at destination" 1 (List.length at_dst);
  let en_route =
    Eval.fire ~env:Env.empty ~db ~rule:forwarding_r2 ~event:(pkt ~at:1 ~src:0 ~dst:2 ~payload:"x")
  in
  check Alcotest.int "silent elsewhere" 0 (List.length en_route)

let test_eval_fire_wrong_event_relation () =
  let db = Db.create () in
  let results =
    Eval.fire ~env:Env.empty ~db ~rule:forwarding_r2 ~event:(route ~at:0 ~dst:1 ~next:1)
  in
  check Alcotest.int "no match" 0 (List.length results)

let test_eval_assignment_and_arith () =
  let rule = rule_of "r1 out(@L, Y) :- ev(@L, A, B), Y := (A + B) * 2." in
  let event = Tuple.make "ev" [ Value.Addr 0; Value.Int 3; Value.Int 4 ] in
  match Eval.fire ~env:Env.empty ~db:(Db.create ()) ~rule ~event with
  | [ (head, []) ] ->
      check tuple_t "computed head" (Tuple.make "out" [ Value.Addr 0; Value.Int 14 ]) head
  | _ -> Alcotest.fail "expected one derivation"

let test_eval_division_by_zero () =
  let rule = rule_of "r1 out(@L, Y) :- ev(@L, A), Y := A / 0." in
  let event = Tuple.make "ev" [ Value.Addr 0; Value.Int 3 ] in
  Alcotest.check_raises "division by zero" (Eval.Eval_error "division by zero") (fun () ->
    ignore (Eval.fire ~env:Env.empty ~db:(Db.create ()) ~rule ~event))

let test_eval_udf () =
  let env =
    Env.register Env.empty "f_double" (function
      | [ Value.Int x ] -> Value.Int (2 * x)
      | _ -> raise (Eval.Eval_error "f_double"))
  in
  let rule = rule_of "r1 out(@L, Y) :- ev(@L, A), Y := f_double(A)." in
  let event = Tuple.make "ev" [ Value.Addr 0; Value.Int 21 ] in
  match Eval.fire ~env ~db:(Db.create ()) ~rule ~event with
  | [ (head, _) ] ->
      check tuple_t "udf head" (Tuple.make "out" [ Value.Addr 0; Value.Int 42 ]) head
  | _ -> Alcotest.fail "expected one derivation"

let test_eval_unknown_udf () =
  let rule = rule_of "r1 out(@L, Y) :- ev(@L, A), Y := f_missing(A)." in
  let event = Tuple.make "ev" [ Value.Addr 0; Value.Int 1 ] in
  Alcotest.check_raises "unknown function" (Eval.Eval_error "unknown function f_missing")
    (fun () -> ignore (Eval.fire ~env:Env.empty ~db:(Db.create ()) ~rule ~event))

let test_eval_string_ordering () =
  let rule = rule_of "r1 out(@L, A) :- ev(@L, A, B), A < B." in
  let fire a b =
    Eval.fire ~env:Env.empty ~db:(Db.create ()) ~rule
      ~event:(Tuple.make "ev" [ Value.Addr 0; Value.Str a; Value.Str b ])
  in
  check Alcotest.int "abc < abd" 1 (List.length (fire "abc" "abd"));
  check Alcotest.int "abd not < abc" 0 (List.length (fire "abd" "abc"))

let test_fire_with_slow_rederives () =
  let event = pkt ~at:0 ~src:0 ~dst:2 ~payload:"x" in
  let slow = [ route ~at:0 ~dst:2 ~next:1 ] in
  match Eval.fire_with_slow ~env:Env.empty ~rule:forwarding_r1 ~event ~slow with
  | Some head -> check tuple_t "re-derived" (pkt ~at:1 ~src:0 ~dst:2 ~payload:"x") head
  | None -> Alcotest.fail "expected a head"

let test_fire_with_slow_rejects_mismatched () =
  let event = pkt ~at:0 ~src:0 ~dst:2 ~payload:"x" in
  (* A route for a different destination no longer unifies. *)
  let slow = [ route ~at:0 ~dst:3 ~next:1 ] in
  check (Alcotest.option tuple_t) "no head" None
    (Eval.fire_with_slow ~env:Env.empty ~rule:forwarding_r1 ~event ~slow)

let test_fire_planned_matches_fire () =
  (* The index-driven join must produce the same derivations as the naive
     scan join, as a multiset. *)
  let db = Db.create () in
  ignore (Db.insert db (route ~at:0 ~dst:2 ~next:1));
  ignore (Db.insert db (route ~at:0 ~dst:2 ~next:3));
  ignore (Db.insert db (route ~at:0 ~dst:4 ~next:2));
  ignore (Db.insert db (route ~at:1 ~dst:2 ~next:2));
  let norm results =
    List.sort compare
      (List.map
         (fun (head, slow) -> (Tuple.canonical head, List.map Tuple.canonical slow))
         results)
  in
  List.iter
    (fun event ->
      List.iter
        (fun rule ->
          let naive = Eval.fire ~env:Env.empty ~db ~rule ~event in
          let planned = Eval.fire_planned ~env:Env.empty ~db ~plan:(Eval.plan rule) ~event in
          check
            (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.list Alcotest.string)))
            ("planned = naive on " ^ Tuple.to_string event)
            (norm naive) (norm planned))
        [ forwarding_r1; forwarding_r2 ])
    [
      pkt ~at:0 ~src:0 ~dst:2 ~payload:"x";
      pkt ~at:0 ~src:0 ~dst:4 ~payload:"y";
      pkt ~at:2 ~src:0 ~dst:2 ~payload:"z";
      pkt ~at:3 ~src:0 ~dst:9 ~payload:"dead";
    ]

let test_fire_with_slow_wrong_count () =
  let event = pkt ~at:0 ~src:0 ~dst:2 ~payload:"x" in
  Alcotest.check_raises "arity mismatch"
    (Eval.Eval_error "fire_with_slow: rule r1 expects 1 slow tuples, got 0") (fun () ->
      ignore (Eval.fire_with_slow ~env:Env.empty ~rule:forwarding_r1 ~event ~slow:[]))

(* ------------------------------------------------------------------ *)
(* Env *)

let test_env_shadowing () =
  let env = Env.register Env.empty "f" (fun _ -> Value.Int 1) in
  let env = Env.register env "f" (fun _ -> Value.Int 2) in
  match Env.lookup env "f" with
  | Some f -> check Alcotest.bool "latest wins" true (f [] = Value.Int 2)
  | None -> Alcotest.fail "lookup failed"

(* ------------------------------------------------------------------ *)
(* Runtime *)

let line_world () =
  let topo = Dpc_net.Topology.create ~n:3 in
  let l = { Dpc_net.Topology.latency = 0.001; bandwidth = 1e7 } in
  Dpc_net.Topology.add_link topo 0 1 l;
  Dpc_net.Topology.add_link topo 1 2 l;
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Forwarding.delp () in
  let runtime =
    Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env:Dpc_apps.Forwarding.env ~hook:Prov_hook.null ()
  in
  Runtime.load_slow runtime
    [ route ~at:0 ~dst:2 ~next:1; route ~at:1 ~dst:2 ~next:2 ];
  (runtime, sim)

let test_runtime_pipeline () =
  let runtime, sim = line_world () in
  Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"hello");
  Runtime.run runtime;
  let outputs = Runtime.outputs runtime in
  check Alcotest.int "one output" 1 (List.length outputs);
  check tuple_t "recv at n2" (Dpc_apps.Forwarding.recv ~at:2 ~src:0 ~dst:2 ~payload:"hello")
    (fst (List.hd outputs));
  let stats = Runtime.stats runtime in
  check Alcotest.int "injected" 1 stats.injected;
  check Alcotest.int "fired" 3 stats.fired;
  check Alcotest.int "outputs" 1 stats.outputs;
  check Alcotest.int "no dead ends" 0 stats.dead_ends;
  (* Two inter-node shipments of (tuple + overhead). *)
  check Alcotest.bool "bytes on the wire" true (Dpc_net.Sim.total_bytes sim > 0)

let test_runtime_dead_end () =
  let runtime, _ = line_world () in
  (* No route for destination 1 at node 0 and 0 <> 1: the event dies. *)
  Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:1 ~payload:"x");
  Runtime.run runtime;
  check Alcotest.int "no outputs" 0 (Runtime.stats runtime).outputs;
  check Alcotest.int "one dead end" 1 (Runtime.stats runtime).dead_ends

let test_runtime_rejects_non_event () =
  let runtime, _ = line_world () in
  Alcotest.check_raises "wrong relation"
    (Invalid_argument "Runtime.inject: expected a \"packet\" tuple, got \"route\"") (fun () ->
      Runtime.inject runtime (route ~at:0 ~dst:2 ~next:1))

let test_runtime_sig_broadcast_reaches_all_nodes () =
  let topo = Dpc_net.Topology.create ~n:3 in
  let l = { Dpc_net.Topology.latency = 0.001; bandwidth = 1e7 } in
  Dpc_net.Topology.add_link topo 0 1 l;
  Dpc_net.Topology.add_link topo 1 2 l;
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Forwarding.delp () in
  let seen = ref [] in
  let hook = { Prov_hook.null with on_slow_update = (fun ~node ~op:_ _ -> seen := node :: !seen) } in
  let runtime = Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env:Dpc_apps.Forwarding.env ~hook () in
  Runtime.insert_slow_runtime runtime (route ~at:1 ~dst:2 ~next:2);
  Runtime.run runtime;
  check (Alcotest.list Alcotest.int) "all nodes signalled" [ 0; 1; 2 ]
    (List.sort compare !seen);
  check Alcotest.bool "tuple stored" true (Db.mem (Runtime.db runtime 1) (route ~at:1 ~dst:2 ~next:2))

let test_runtime_duplicate_insert_is_silent () =
  (* §5.5: re-inserting a slow tuple already present must neither broadcast
     [sig] nor charge any message accounting. *)
  let runtime, sim = line_world () in
  let msgs () =
    Dpc_util.Metrics.counter (Runtime.metrics_snapshot runtime) "runtime.shipped_msgs"
  in
  check Alcotest.int "load_slow ships nothing" 0 (msgs ());
  Runtime.insert_slow_runtime runtime (route ~at:0 ~dst:2 ~next:1);
  Runtime.run runtime;
  check Alcotest.int "duplicate insert ships nothing" 0 (msgs ());
  check Alcotest.int "no bytes on the wire" 0 (Dpc_net.Sim.total_bytes sim);
  Runtime.insert_slow_runtime runtime (route ~at:0 ~dst:5 ~next:1);
  Runtime.run runtime;
  check Alcotest.bool "fresh insert broadcasts" true (msgs () > 0)

let test_runtime_delete_broadcasts_sig () =
  (* §5.5 fix: a deletion is a slow-table update and must broadcast [sig]
     to every node, tagged with the delete op. *)
  let topo = Dpc_net.Topology.create ~n:3 in
  let l = { Dpc_net.Topology.latency = 0.001; bandwidth = 1e7 } in
  Dpc_net.Topology.add_link topo 0 1 l;
  Dpc_net.Topology.add_link topo 1 2 l;
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Forwarding.delp () in
  let seen = ref [] in
  let hook =
    { Prov_hook.null with
      on_slow_update = (fun ~node ~op _ -> seen := (node, op) :: !seen)
    }
  in
  let runtime =
    Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp
      ~env:Dpc_apps.Forwarding.env ~hook ()
  in
  Runtime.load_slow runtime [ route ~at:1 ~dst:2 ~next:2 ];
  (* Deleting an absent tuple is a no-op: no signal, returns false. *)
  check Alcotest.bool "absent delete" false
    (Runtime.delete_slow_runtime runtime (route ~at:1 ~dst:9 ~next:2));
  Runtime.run runtime;
  check Alcotest.int "absent delete is silent" 0 (List.length !seen);
  check Alcotest.bool "present delete" true
    (Runtime.delete_slow_runtime runtime (route ~at:1 ~dst:2 ~next:2));
  Runtime.run runtime;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.bool))
    "delete signalled on every node"
    [ (0, true); (1, true); (2, true) ]
    (List.sort compare
       (List.map (fun (n, op) -> (n, op = Prov_hook.Slow_delete)) !seen));
  check Alcotest.bool "tuple gone" false
    (Db.mem (Runtime.db runtime 1) (route ~at:1 ~dst:2 ~next:2));
  check Alcotest.bool "sig bytes accounted" true
    (Dpc_util.Metrics.counter (Runtime.metrics_snapshot runtime) "runtime.shipped_msgs" > 0)

let test_runtime_record_outputs_off () =
  let topo = Dpc_net.Topology.create ~n:3 in
  let l = { Dpc_net.Topology.latency = 0.001; bandwidth = 1e7 } in
  Dpc_net.Topology.add_link topo 0 1 l;
  Dpc_net.Topology.add_link topo 1 2 l;
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Forwarding.delp () in
  let runtime =
    Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp
      ~env:Dpc_apps.Forwarding.env ~hook:Prov_hook.null ~record_outputs:false ()
  in
  Runtime.load_slow runtime [ route ~at:0 ~dst:2 ~next:1; route ~at:1 ~dst:2 ~next:2 ];
  Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"x");
  Runtime.run runtime;
  check Alcotest.int "outputs not retained" 0 (List.length (Runtime.outputs runtime));
  check Alcotest.int "stats still count" 1 (Runtime.stats runtime).outputs;
  check Alcotest.int "metrics still count" 1
    (Dpc_util.Metrics.counter (Runtime.metrics_snapshot runtime) "runtime.outputs")

let test_runtime_multipath_derivations () =
  (* Two routes at n0 toward n2: the packet is duplicated (both derivations
     execute), and two recv outputs arrive. *)
  let topo = Dpc_net.Topology.create ~n:3 in
  let l = { Dpc_net.Topology.latency = 0.001; bandwidth = 1e7 } in
  Dpc_net.Topology.add_link topo 0 1 l;
  Dpc_net.Topology.add_link topo 1 2 l;
  Dpc_net.Topology.add_link topo 0 2 l;
  let routing = Dpc_net.Routing.compute topo in
  let sim = Dpc_net.Sim.create ~topology:topo ~routing () in
  let delp = Dpc_apps.Forwarding.delp () in
  let runtime = Runtime.create ~transport:(Dpc_net.Transport.of_sim sim) ~delp ~env:Dpc_apps.Forwarding.env ~hook:Prov_hook.null () in
  Runtime.load_slow runtime
    [ route ~at:0 ~dst:2 ~next:1; route ~at:0 ~dst:2 ~next:2; route ~at:1 ~dst:2 ~next:2 ];
  Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"x");
  Runtime.run runtime;
  (* The two copies produce the same recv tuple; both executions complete. *)
  check Alcotest.int "two deliveries" 2 (Runtime.stats runtime).outputs

(* The quickstart pipeline must report work through the metrics registry
   under either transport backend: the runtime records into per-node
   registries (Node.metrics) and [metrics_snapshot] merges them. *)
let run_quickstart transport =
  let delp = Dpc_apps.Forwarding.delp () in
  let runtime =
    Runtime.create ~transport ~delp ~env:Dpc_apps.Forwarding.env ~hook:Prov_hook.null ()
  in
  Runtime.load_slow runtime [ route ~at:0 ~dst:2 ~next:1; route ~at:1 ~dst:2 ~next:2 ];
  Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"hello");
  Runtime.run runtime;
  runtime

let check_metrics_nonzero runtime =
  let s = Runtime.metrics_snapshot runtime in
  check Alcotest.int "injected" 1 (Dpc_util.Metrics.counter s "runtime.injected");
  check Alcotest.int "fired" 3 (Dpc_util.Metrics.counter s "runtime.fired");
  check Alcotest.int "outputs" 1 (Dpc_util.Metrics.counter s "runtime.outputs");
  check Alcotest.bool "shipped msgs" true
    (Dpc_util.Metrics.counter s "runtime.shipped_msgs" > 0);
  check Alcotest.bool "shipped bytes" true
    (Dpc_util.Metrics.counter s "runtime.shipped_bytes" > 0)

let test_runtime_metrics_sim () =
  let runtime, _ = line_world () in
  Runtime.inject runtime (Dpc_apps.Forwarding.packet ~src:0 ~dst:2 ~payload:"hello");
  Runtime.run runtime;
  check_metrics_nonzero runtime

let test_runtime_metrics_direct () =
  let runtime = run_quickstart (Dpc_net.Transport.direct ~nodes:3 ()) in
  check_metrics_nonzero runtime;
  (* Same logical pipeline: stats agree with the sim-backed run. *)
  check Alcotest.int "one output" 1 (Runtime.stats runtime).outputs;
  check Alcotest.int "fired" 3 (Runtime.stats runtime).fired

let test_runtime_metrics_live_on_nodes () =
  (* Snapshots are per node: n0 forwards (fires), n2 receives (output). *)
  let runtime = run_quickstart (Dpc_net.Transport.direct ~nodes:3 ()) in
  let at n = Dpc_engine.Node.metrics (Runtime.node runtime n) in
  check Alcotest.int "n0 fired" 1 (Dpc_util.Metrics.counter_value (at 0) "runtime.fired");
  check Alcotest.int "n2 output" 1 (Dpc_util.Metrics.counter_value (at 2) "runtime.outputs");
  check Alcotest.int "n2 no injections" 0
    (Dpc_util.Metrics.counter_value (at 2) "runtime.injected")

let () =
  Alcotest.run "dpc_engine"
    [
      ( "db",
        [
          Alcotest.test_case "set semantics" `Quick test_db_set_semantics;
          Alcotest.test_case "deterministic scan" `Quick test_db_scan_deterministic;
          Alcotest.test_case "size bytes" `Quick test_db_size_bytes_grows;
          Alcotest.test_case "incremental size bytes" `Quick test_db_size_bytes_incremental;
          Alcotest.test_case "keyed lookup" `Quick test_db_lookup_indexed;
        ] );
      ( "eval",
        [
          Alcotest.test_case "match atom" `Quick test_eval_match_atom;
          Alcotest.test_case "repeated variables" `Quick test_eval_match_atom_consistency;
          Alcotest.test_case "join" `Quick test_eval_fire_join;
          Alcotest.test_case "multiple matches" `Quick test_eval_fire_multiple_matches;
          Alcotest.test_case "comparison" `Quick test_eval_fire_comparison;
          Alcotest.test_case "wrong event relation" `Quick test_eval_fire_wrong_event_relation;
          Alcotest.test_case "assignment and arithmetic" `Quick test_eval_assignment_and_arith;
          Alcotest.test_case "division by zero" `Quick test_eval_division_by_zero;
          Alcotest.test_case "udf" `Quick test_eval_udf;
          Alcotest.test_case "unknown udf" `Quick test_eval_unknown_udf;
          Alcotest.test_case "string ordering" `Quick test_eval_string_ordering;
          Alcotest.test_case "fire_with_slow rederives" `Quick test_fire_with_slow_rederives;
          Alcotest.test_case "fire_with_slow rejects mismatch" `Quick
            test_fire_with_slow_rejects_mismatched;
          Alcotest.test_case "fire_with_slow wrong count" `Quick test_fire_with_slow_wrong_count;
          Alcotest.test_case "planned fire matches naive" `Quick test_fire_planned_matches_fire;
        ] );
      ("env", [ Alcotest.test_case "shadowing" `Quick test_env_shadowing ]);
      ( "runtime",
        [
          Alcotest.test_case "pipeline" `Quick test_runtime_pipeline;
          Alcotest.test_case "dead end" `Quick test_runtime_dead_end;
          Alcotest.test_case "rejects non-event" `Quick test_runtime_rejects_non_event;
          Alcotest.test_case "sig broadcast" `Quick test_runtime_sig_broadcast_reaches_all_nodes;
          Alcotest.test_case "duplicate insert silent" `Quick test_runtime_duplicate_insert_is_silent;
          Alcotest.test_case "delete broadcasts sig" `Quick test_runtime_delete_broadcasts_sig;
          Alcotest.test_case "record_outputs off" `Quick test_runtime_record_outputs_off;
          Alcotest.test_case "multipath derivations" `Quick test_runtime_multipath_derivations;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "quickstart counters (sim)" `Quick test_runtime_metrics_sim;
          Alcotest.test_case "quickstart counters (direct)" `Quick test_runtime_metrics_direct;
          Alcotest.test_case "per-node attribution" `Quick test_runtime_metrics_live_on_nodes;
        ] );
    ]
