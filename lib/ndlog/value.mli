(** Runtime values carried by NDlog tuples.

    Node addresses are a distinct constructor ([Addr]) because the location
    specifier ("@" on the first attribute of every relation) must always hold
    an address, and the engine routes head tuples by it. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Addr of int  (** a node identifier in the distributed system *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val canonical : t -> string
(** Unambiguous rendering used as SHA-1 input ("i:42", "s:<len>:...",
    "b:true", "@7"): distinct values never collide textually. *)

val canonical_iter : (string -> unit) -> t -> unit
(** [canonical_iter f v] feeds the pieces of [canonical v] to [f] in
    order without concatenating them — a [Str] payload is passed through
    by reference, so hashing a value never copies it. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering: [42], ["data"], [true], [n7]. *)

val to_string : t -> string

val addr_exn : t -> int
(** @raise Invalid_argument if the value is not an [Addr]. *)

val int_exn : t -> int
val bool_exn : t -> bool
val str_exn : t -> string

val wire_size : t -> int
(** Bytes this value occupies in a serialized message (used for bandwidth
    accounting). *)

val serialized_size : t -> int
(** Exact byte count {!serialize} emits for this value, computed without
    serializing. *)

val serialize : Dpc_util.Serialize.writer -> t -> unit
val deserialize : Dpc_util.Serialize.reader -> t
