module S = Dpc_util.Serialize
module Tuple = Dpc_ndlog.Tuple

type status = {
  node : int;
  recovered : bool;
  unacked : int;
  data_sent : int;
  data_received : int;
  fired : int;
  outputs : int;
  wal_entries : int;
  outbox_bytes : int;
}

type request =
  | Load of Tuple.t list
  | Inject of Tuple.t
  | Slow_insert of Tuple.t
  | Slow_delete of Tuple.t
  | Checkpoint
  | Status
  | Digest
  | Shutdown
  | Compact
  | Block of int
  | Unblock of int

type reply =
  | Ok
  | Deleted of bool
  | Status_r of status
  | Digest_r of { node : int; store : string; db : string }
  | Error of string

let encode_request req =
  S.with_scratch (fun w ->
      match req with
      | Load tuples ->
          S.write_varint w 0;
          S.write_list w (Tuple.serialize w) tuples
      | Inject tuple ->
          S.write_varint w 1;
          Tuple.serialize w tuple
      | Slow_insert tuple ->
          S.write_varint w 2;
          Tuple.serialize w tuple
      | Slow_delete tuple ->
          S.write_varint w 3;
          Tuple.serialize w tuple
      | Checkpoint -> S.write_varint w 4
      | Status -> S.write_varint w 5
      | Digest -> S.write_varint w 6
      | Shutdown -> S.write_varint w 7
      | Compact -> S.write_varint w 8
      | Block peer ->
          S.write_varint w 9;
          S.write_varint w peer
      | Unblock peer ->
          S.write_varint w 10;
          S.write_varint w peer)

let decode_request payload =
  let r = S.reader payload in
  match S.read_varint r with
  | 0 -> Load (S.read_list r (fun () -> Tuple.deserialize r))
  | 1 -> Inject (Tuple.deserialize r)
  | 2 -> Slow_insert (Tuple.deserialize r)
  | 3 -> Slow_delete (Tuple.deserialize r)
  | 4 -> Checkpoint
  | 5 -> Status
  | 6 -> Digest
  | 7 -> Shutdown
  | 8 -> Compact
  | 9 -> Block (S.read_varint r)
  | 10 -> Unblock (S.read_varint r)
  | tag -> raise (S.Corrupt (Printf.sprintf "control request: unknown tag %d" tag))

let encode_reply reply =
  S.with_scratch (fun w ->
      match reply with
      | Ok -> S.write_varint w 0
      | Deleted present ->
          S.write_varint w 1;
          S.write_bool w present
      | Status_r s ->
          S.write_varint w 2;
          S.write_varint w s.node;
          S.write_bool w s.recovered;
          S.write_varint w s.unacked;
          S.write_varint w s.data_sent;
          S.write_varint w s.data_received;
          S.write_varint w s.fired;
          S.write_varint w s.outputs;
          S.write_varint w s.wal_entries;
          S.write_varint w s.outbox_bytes
      | Digest_r { node; store; db } ->
          S.write_varint w 3;
          S.write_varint w node;
          S.write_string w store;
          S.write_string w db
      | Error msg ->
          S.write_varint w 4;
          S.write_string w msg)

let decode_reply payload =
  let r = S.reader payload in
  match S.read_varint r with
  | 0 -> Ok
  | 1 -> Deleted (S.read_bool r)
  | 2 ->
      let node = S.read_varint r in
      let recovered = S.read_bool r in
      let unacked = S.read_varint r in
      let data_sent = S.read_varint r in
      let data_received = S.read_varint r in
      let fired = S.read_varint r in
      let outputs = S.read_varint r in
      let wal_entries = S.read_varint r in
      let outbox_bytes = S.read_varint r in
      Status_r
        { node; recovered; unacked; data_sent; data_received; fired; outputs; wal_entries;
          outbox_bytes }
  | 3 ->
      let node = S.read_varint r in
      let store = S.read_string r in
      let db = S.read_string r in
      Digest_r { node; store; db }
  | 4 -> Error (S.read_string r)
  | tag -> raise (S.Corrupt (Printf.sprintf "control reply: unknown tag %d" tag))
