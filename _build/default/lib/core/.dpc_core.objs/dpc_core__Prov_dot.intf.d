lib/core/prov_dot.mli: Prov_tree
