examples/misconfigured_route.ml: Backend Dpc_apps Dpc_core Dpc_engine Dpc_ndlog Dpc_net Format List Prov_tree Query_cost String
